//! Trace extraction: the profiling path of the framework.
//!
//! The paper identifies slacks "using either the Omega library or the
//! profiling tool" (§IV-A). Interpretation of the loop-nest IR *is* the
//! profiling tool: it enumerates every process's iterations, records each
//! I/O call instance with its concrete file region, and assigns each to a
//! scheduling slot. The paper measures slots in loop iterations and groups
//! `d > 1` iterations into one unit for large loops; [`SlotGranularity`]
//! carries that `d`.

use std::collections::HashMap;

use sdds_storage::FileId;
use simkit::SimDuration;

use crate::ir::{IoCallId, IoDirection, Program, ProgramError, Stmt};

/// Hard cap on the number of scheduling slots per process, protecting the
/// O(slots) scheduling structures.
const MAX_SLOTS: u64 = 50_000_000;

/// How loop iterations map to scheduling slots.
///
/// `Hash` lets granularities serve as compilation-cache keys (the cache
/// memoizes traces per `(app, scale, granularity)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotGranularity {
    /// Number of innermost-slot-loop iterations per scheduling slot
    /// (the paper's `d`, §IV-A).
    pub iterations_per_slot: u32,
    /// If set, an access of `len` bytes occupies
    /// `ceil(len / bytes_per_slot)` slots (the extended algorithm's access
    /// lengths, §IV-B2); if `None`, every access has length 1 (the basic
    /// algorithm's assumption).
    pub access_bytes_per_slot: Option<u64>,
}

impl SlotGranularity {
    /// One iteration per slot, all accesses length 1.
    pub fn unit() -> Self {
        SlotGranularity {
            iterations_per_slot: 1,
            access_bytes_per_slot: None,
        }
    }

    /// `d` iterations per slot, accesses length 1.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn grouped(d: u32) -> Self {
        assert!(d > 0, "granularity must be positive");
        SlotGranularity {
            iterations_per_slot: d,
            access_bytes_per_slot: None,
        }
    }

    /// Unit iteration granularity with multi-slot access lengths.
    pub fn with_access_lengths(bytes_per_slot: u64) -> Self {
        assert!(bytes_per_slot > 0, "bytes per slot must be positive");
        SlotGranularity {
            iterations_per_slot: 1,
            access_bytes_per_slot: Some(bytes_per_slot),
        }
    }

    fn slot_of(&self, raw: u64) -> u32 {
        (raw / self.iterations_per_slot as u64) as u32
    }

    fn length_of(&self, len: u64) -> u32 {
        match self.access_bytes_per_slot {
            None => 1,
            Some(b) => len.div_ceil(b).max(1) as u32,
        }
    }
}

/// One dynamic I/O operation observed during interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoInstance {
    /// The static call that produced it.
    pub call: IoCallId,
    /// Target file.
    pub file: FileId,
    /// Concrete byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Read or write.
    pub direction: IoDirection,
    /// Executing process.
    pub proc: usize,
    /// The scheduling slot at which the program originally performs it.
    pub slot: u32,
    /// How many slots the access occupies (≥ 1).
    pub length: u32,
}

impl IoInstance {
    /// The half-open byte range `[offset, offset + len)`.
    pub fn range(&self) -> (u64, u64) {
        (self.offset, self.offset + self.len)
    }

    /// Returns `true` if two instances touch overlapping bytes of the same
    /// file.
    pub fn overlaps(&self, other: &IoInstance) -> bool {
        self.file == other.file
            && self.offset < other.offset + other.len
            && other.offset < self.offset + self.len
    }
}

/// The observed execution of one process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessTrace {
    /// Process rank.
    pub proc: usize,
    /// Number of scheduling slots this process executes.
    pub slots: u32,
    /// Modeled compute time attributed to each slot.
    pub compute: Vec<SimDuration>,
    /// I/O instances in program order.
    pub ios: Vec<IoInstance>,
}

/// The observed execution of the whole program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramTrace {
    /// Program name (for reports).
    pub name: String,
    /// Per-process traces, indexed by rank.
    pub processes: Vec<ProcessTrace>,
    /// The common normalized iteration count: `max` over processes.
    pub total_slots: u32,
}

impl ProgramTrace {
    /// Total number of I/O instances across processes.
    pub fn io_count(&self) -> usize {
        self.processes.iter().map(|p| p.ios.len()).sum()
    }

    /// Iterates all I/O instances across processes in rank order.
    pub fn all_ios(&self) -> impl Iterator<Item = &IoInstance> {
        self.processes.iter().flat_map(|p| p.ios.iter())
    }

    /// Merges two traces into one multi-application workload (the paper's
    /// §VII future-work scenario): `other`'s processes run alongside
    /// `self`'s on the same storage array, with `other`'s files renumbered
    /// past `self`'s so the applications never share data.
    ///
    /// The merged iteration space is the union: each process keeps its own
    /// slot count, and the normalized total is the maximum.
    pub fn merge(&self, other: &ProgramTrace) -> ProgramTrace {
        let file_base = self.all_ios().map(|io| io.file.0 + 1).max().unwrap_or(0);
        let proc_base = self.processes.len();
        let mut processes = self.processes.clone();
        for p in &other.processes {
            let mut p = p.clone();
            p.proc += proc_base;
            for io in &mut p.ios {
                io.proc += proc_base;
                io.file = FileId(io.file.0 + file_base);
            }
            processes.push(p);
        }
        ProgramTrace {
            name: format!("{}+{}", self.name, other.name),
            total_slots: self.total_slots.max(other.total_slots),
            processes,
        }
    }

    /// Total bytes read and written.
    pub fn bytes_moved(&self) -> (u64, u64) {
        let mut read = 0;
        let mut written = 0;
        for io in self.all_ios() {
            match io.direction {
                IoDirection::Read => read += io.len,
                IoDirection::Write => written += io.len,
            }
        }
        (read, written)
    }
}

impl Program {
    /// Interprets the program, producing the per-process traces the slack
    /// analysis and the runtime scheduler consume.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] for structural problems, out-of-bounds
    /// accesses, or programs exceeding the supported slot count.
    pub fn trace(&self, granularity: SlotGranularity) -> Result<ProgramTrace, ProgramError> {
        self.validate()?;
        let mut processes = Vec::with_capacity(self.nprocs());
        for proc in 0..self.nprocs() {
            processes.push(self.trace_process(proc, granularity)?);
        }
        let total_slots = processes.iter().map(|p| p.slots).max().unwrap_or(0);
        Ok(ProgramTrace {
            name: self.name().to_owned(),
            processes,
            total_slots,
        })
    }

    fn trace_process(
        &self,
        proc: usize,
        granularity: SlotGranularity,
    ) -> Result<ProcessTrace, ProgramError> {
        let mut interp = Interpreter {
            program: self,
            proc,
            granularity,
            env: HashMap::from([("p".to_owned(), proc as i64)]),
            raw_slot: 0,
            compute: Vec::new(),
            ios: Vec::new(),
        };
        interp.run(self.body())?;
        // The slot counter points one past the last completed innermost
        // iteration; any trailing statements landed on `raw_slot`, so the
        // process occupies raw_slot + 1 raw slots unless it is exactly at a
        // boundary with nothing trailing.
        let raw_total = interp.effective_raw_total();
        if raw_total > MAX_SLOTS {
            return Err(ProgramError::TooManySlots);
        }
        let slots = granularity.slot_of(raw_total.saturating_sub(1)) + 1;
        let mut compute = interp.compute;
        compute.resize(slots as usize, SimDuration::ZERO);
        Ok(ProcessTrace {
            proc,
            slots,
            compute,
            ios: interp.ios,
        })
    }
}

struct Interpreter<'a> {
    program: &'a Program,
    proc: usize,
    granularity: SlotGranularity,
    env: HashMap<String, i64>,
    raw_slot: u64,
    compute: Vec<SimDuration>,
    ios: Vec<IoInstance>,
}

impl Interpreter<'_> {
    fn run(&mut self, stmts: &[Stmt]) -> Result<(), ProgramError> {
        for stmt in stmts {
            match stmt {
                Stmt::Loop {
                    var,
                    lower,
                    upper,
                    body,
                } => {
                    let lo = self.eval(lower)?;
                    let hi = self.eval(upper)?;
                    let is_slot_loop = contains_io(body);
                    let has_inner_slot_loop = contains_slot_loop(body);
                    for v in lo..=hi {
                        self.env.insert(var.clone(), v);
                        self.run(body)?;
                        // Only the innermost loop that performs I/O advances
                        // the slot counter; outer slot loops delegate to it.
                        if is_slot_loop && !has_inner_slot_loop {
                            self.raw_slot += 1;
                            if self.raw_slot > MAX_SLOTS {
                                return Err(ProgramError::TooManySlots);
                            }
                        }
                    }
                    self.env.remove(var);
                }
                Stmt::Io(call) => {
                    let offset = call
                        .offset
                        .eval(|v| self.env.get(v).copied())
                        .map_err(|v| ProgramError::UnboundVariable(v.to_owned()))?;
                    // `Program::validate` already checked the declaration;
                    // report the typed error anyway rather than panic.
                    let Some(decl) = self.program.files().iter().find(|f| f.id == call.file) else {
                        return Err(ProgramError::UnknownFile(call.file));
                    };
                    let size = decl.size;
                    if offset < 0 || offset as u64 + call.len > size {
                        return Err(ProgramError::OutOfBounds {
                            call: call.id,
                            offset,
                            size,
                        });
                    }
                    let slot = self.granularity.slot_of(self.raw_slot);
                    self.ios.push(IoInstance {
                        call: call.id,
                        file: call.file,
                        offset: offset as u64,
                        len: call.len,
                        direction: call.direction,
                        proc: self.proc,
                        slot,
                        length: self.granularity.length_of(call.len),
                    });
                }
                Stmt::Compute(cost) => {
                    let slot = self.granularity.slot_of(self.raw_slot) as usize;
                    if self.compute.len() <= slot {
                        self.compute.resize(slot + 1, SimDuration::ZERO);
                    }
                    self.compute[slot] += *cost;
                }
                Stmt::Skip { slots, per_slot } => {
                    for _ in 0..*slots {
                        if !per_slot.is_zero() {
                            let slot = self.granularity.slot_of(self.raw_slot) as usize;
                            if self.compute.len() <= slot {
                                self.compute.resize(slot + 1, SimDuration::ZERO);
                            }
                            self.compute[slot] += *per_slot;
                        }
                        self.raw_slot += 1;
                        if self.raw_slot > MAX_SLOTS {
                            return Err(ProgramError::TooManySlots);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn eval(&self, e: &crate::affine::AffineExpr) -> Result<i64, ProgramError> {
        e.eval(|v| self.env.get(v).copied())
            .map_err(|v| ProgramError::UnboundVariable(v.to_owned()))
    }

    /// Raw slots consumed: at least one, and one past the counter if any
    /// event landed on the current (unfinished) slot.
    fn effective_raw_total(&self) -> u64 {
        let trailing = self
            .ios
            .iter()
            .map(|io| io.slot as u64 * self.granularity.iterations_per_slot as u64)
            .chain(std::iter::once(0))
            .max()
            .unwrap_or(0);
        self.raw_slot.max(trailing).max(1)
    }
}

fn contains_io(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Io(_) => true,
        Stmt::Loop { body, .. } => contains_io(body),
        Stmt::Compute(_) | Stmt::Skip { .. } => false,
    })
}

fn contains_slot_loop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Loop { body, .. } => contains_io(body),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IoDirection, Program};
    use sdds_storage::FileId;

    const MB: u64 = 1 << 20;

    /// The Fig. 5 matrix-multiplication structure with R = 4.
    fn matmul(r: i64, nprocs: usize) -> Program {
        let mut p = Program::new("mm", nprocs);
        let u = p.add_file(FileId(0), 1 << 30);
        let v = p.add_file(FileId(1), 1 << 30);
        let w = p.add_file(FileId(2), 1 << 30);
        let rr = r;
        p.push_loop("m", 0, r - 1, move |b| {
            b.io(IoDirection::Read, u, |e| e.term("m", MB as i64), MB);
            b.loop_("n", 0, rr - 1, move |b| {
                b.io(IoDirection::Read, v, |e| e.term("n", MB as i64), MB);
                b.compute(SimDuration::from_millis(5));
                b.io(
                    IoDirection::Write,
                    w,
                    |e| e.term("m", rr * MB as i64).term("n", MB as i64),
                    MB,
                );
            });
        });
        p
    }

    #[test]
    fn matmul_slot_structure() {
        let t = matmul(4, 1).unwrap_trace();
        assert_eq!(t.total_slots, 16); // R*R inner iterations
        let proc = &t.processes[0];
        // Read U of m happens at slot m*R.
        let u_reads: Vec<u32> = proc
            .ios
            .iter()
            .filter(|io| io.call.0 == 0)
            .map(|io| io.slot)
            .collect();
        assert_eq!(u_reads, vec![0, 4, 8, 12]);
        // Write W of (m, n) at slot m*R + n.
        let w_writes: Vec<u32> = proc
            .ios
            .iter()
            .filter(|io| io.call.0 == 2)
            .map(|io| io.slot)
            .collect();
        assert_eq!(w_writes, (0..16).collect::<Vec<u32>>());
    }

    trait UnwrapTrace {
        fn unwrap_trace(&self) -> ProgramTrace;
    }
    impl UnwrapTrace for Program {
        fn unwrap_trace(&self) -> ProgramTrace {
            self.trace(SlotGranularity::unit()).unwrap()
        }
    }

    #[test]
    fn per_process_offsets_differ() {
        let mut p = Program::new("scan", 2);
        let f = p.add_file(FileId(0), 64 * MB);
        p.push_loop("i", 0, 3, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| e.term("i", MB as i64).term("p", 4 * MB as i64),
                MB,
            );
        });
        let t = p.unwrap_trace();
        assert_eq!(t.processes[0].ios[0].offset, 0);
        assert_eq!(t.processes[1].ios[0].offset, 4 * MB);
        assert_eq!(t.total_slots, 4);
    }

    #[test]
    fn granularity_groups_iterations() {
        let t = matmul(4, 1).trace(SlotGranularity::grouped(4)).unwrap();
        assert_eq!(t.total_slots, 4);
        let u_reads: Vec<u32> = t.processes[0]
            .ios
            .iter()
            .filter(|io| io.call.0 == 0)
            .map(|io| io.slot)
            .collect();
        assert_eq!(u_reads, vec![0, 1, 2, 3]);
    }

    #[test]
    fn access_lengths_derive_from_bytes() {
        let t = matmul(2, 1)
            .trace(SlotGranularity::with_access_lengths(MB / 2))
            .unwrap();
        assert!(t.processes[0].ios.iter().all(|io| io.length == 2));
        let t1 = matmul(2, 1).unwrap_trace();
        assert!(t1.processes[0].ios.iter().all(|io| io.length == 1));
    }

    #[test]
    fn compute_attributed_to_slots() {
        let t = matmul(2, 1).unwrap_trace();
        let compute = &t.processes[0].compute;
        assert_eq!(compute.len(), 4);
        assert!(compute.iter().all(|&c| c == SimDuration::from_millis(5)));
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut p = Program::new("oob", 1);
        let f = p.add_file(FileId(0), MB);
        p.push_loop("i", 0, 3, move |b| {
            b.io(IoDirection::Read, f, |e| e.term("i", MB as i64), MB);
        });
        assert!(matches!(
            p.trace(SlotGranularity::unit()),
            Err(ProgramError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn empty_loop_contributes_no_slots() {
        let mut p = Program::new("empty", 1);
        let f = p.add_file(FileId(0), MB);
        p.push_loop("i", 5, 4, move |b| {
            // upper < lower: zero iterations
            b.io(IoDirection::Read, f, |e| e, 1024);
        });
        let t = p.unwrap_trace();
        assert_eq!(t.io_count(), 0);
        assert_eq!(t.total_slots, 1);
    }

    #[test]
    fn top_level_io_lands_in_slot_zero() {
        let mut p = Program::new("open", 1);
        let f = p.add_file(FileId(0), MB);
        p.push_io(IoDirection::Read, f, |e| e, 1024);
        let t = p.unwrap_trace();
        assert_eq!(t.processes[0].ios[0].slot, 0);
    }

    #[test]
    fn affine_inner_bounds() {
        // Triangular loop: for i in 0..=3 { for j in 0..=i { io } }.
        let mut p = Program::new("tri", 1);
        let f = p.add_file(FileId(0), 64 * MB);
        p.push_loop("i", 0, 3, move |b| {
            b.loop_expr(
                "j",
                crate::affine::AffineExpr::constant(0),
                crate::affine::AffineExpr::var("i"),
                move |b| {
                    b.io(
                        IoDirection::Read,
                        f,
                        |e| e.term("i", MB as i64).term("j", 1024),
                        1024,
                    );
                },
            );
        });
        let t = p.unwrap_trace();
        assert_eq!(t.io_count(), 1 + 2 + 3 + 4);
        assert_eq!(t.total_slots, 10);
    }

    #[test]
    fn overlap_detection() {
        let a = IoInstance {
            call: IoCallId(0),
            file: FileId(0),
            offset: 0,
            len: 100,
            direction: IoDirection::Write,
            proc: 0,
            slot: 0,
            length: 1,
        };
        let mut b = a;
        b.offset = 99;
        assert!(a.overlaps(&b));
        b.offset = 100;
        assert!(!a.overlaps(&b));
        b.offset = 0;
        b.file = FileId(1);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn merge_combines_applications() {
        let a = matmul(2, 1).unwrap_trace();
        let b = matmul(3, 2).unwrap_trace();
        let m = a.merge(&b);
        assert_eq!(m.processes.len(), 3);
        assert_eq!(m.total_slots, a.total_slots.max(b.total_slots));
        assert_eq!(m.io_count(), a.io_count() + b.io_count());
        // The second application's processes are renumbered after the
        // first's, and its files do not collide with the first's.
        assert_eq!(m.processes[1].proc, 1);
        assert_eq!(m.processes[2].proc, 2);
        let a_files: std::collections::HashSet<u32> = a.all_ios().map(|io| io.file.0).collect();
        let b_files: std::collections::HashSet<u32> = m.processes[1..]
            .iter()
            .flat_map(|p| p.ios.iter())
            .map(|io| io.file.0)
            .collect();
        assert!(a_files.is_disjoint(&b_files));
        let (ra, wa) = a.bytes_moved();
        let (rb, wb) = b.bytes_moved();
        assert_eq!(m.bytes_moved(), (ra + rb, wa + wb));
        assert_eq!(m.name, "mm+mm");
    }

    #[test]
    fn bytes_moved_totals() {
        let t = matmul(2, 2).unwrap_trace();
        let (r, w) = t.bytes_moved();
        // Per process: 2 U reads + 4 V reads = 6 MB read, 4 MB written.
        assert_eq!(r, 2 * 6 * MB);
        assert_eq!(w, 2 * 4 * MB);
    }
}
