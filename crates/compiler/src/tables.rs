//! Scheduling-table serialization.
//!
//! Figure 4 of the paper hands a per-process *scheduling table* from the
//! compiler to the runtime scheduler. This module gives
//! [`ScheduleTable`] a stable on-disk representation (one tab-separated
//! record per scheduled access plus a header), so compiled schedules can
//! be inspected, diffed, and reloaded without re-running the compiler.
//!
//! # Example
//!
//! ```
//! use sdds_compiler::ir::{IoDirection, Program};
//! use sdds_compiler::{analyze_slacks, SchedulerConfig, SlotGranularity};
//! use sdds_storage::{FileId, StripingLayout};
//!
//! let mut p = Program::new("t", 1);
//! let f = p.add_file(FileId(0), 1 << 20);
//! p.push_loop("i", 0, 3, |b| {
//!     b.io(IoDirection::Read, f, |e| e.term("i", 65_536), 65_536);
//! });
//! let trace = p.trace(SlotGranularity::unit()).unwrap();
//! let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
//! let table = SchedulerConfig::paper_defaults().schedule(&accesses, &trace).unwrap();
//!
//! let mut buf = Vec::new();
//! table.write_tsv(&mut buf).unwrap();
//! let restored = sdds_compiler::ScheduleTable::read_tsv(&buf[..]).unwrap();
//! assert_eq!(table, restored);
//! ```

use std::io::{self, BufRead, Write};

use sdds_storage::FileId;

use crate::ir::{IoCallId, IoDirection};
use crate::schedule::{ScheduleTable, ScheduledIo};
use crate::trace::IoInstance;

/// The format version written in the header.
const FORMAT_VERSION: u32 = 1;

impl ScheduleTable {
    /// Writes the table as tab-separated records.
    ///
    /// Line 1 is a header (`sdds-schedule <version> <nprocs>
    /// <total_slots> <accesses>`); each following line is one scheduled
    /// access: `access_index slot proc orig_slot call file offset len dir
    /// length`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_tsv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(
            w,
            "sdds-schedule\t{}\t{}\t{}\t{}",
            FORMAT_VERSION,
            self.nprocs(),
            self.total_slots(),
            self.scheduled_count()
        )?;
        for e in self.iter() {
            let dir = match e.io.direction {
                IoDirection::Read => 'R',
                IoDirection::Write => 'W',
            };
            writeln!(
                w,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                e.access_index,
                e.slot,
                e.io.proc,
                e.io.slot,
                e.io.call.0,
                e.io.file.0,
                e.io.offset,
                e.io.len,
                dir,
                e.io.length
            )?;
        }
        Ok(())
    }

    /// Reads a table previously written by [`ScheduleTable::write_tsv`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed input (bad header, wrong field
    /// counts, unparsable numbers, inconsistent access count).
    pub fn read_tsv<R: BufRead>(r: R) -> io::Result<ScheduleTable> {
        fn bad(msg: impl Into<String>) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, msg.into())
        }
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| bad("empty schedule file"))??;
        let h: Vec<&str> = header.split('\t').collect();
        if h.len() != 5 || h[0] != "sdds-schedule" {
            return Err(bad("not an sdds-schedule file"));
        }
        let version: u32 = h[1].parse().map_err(|_| bad("bad version"))?;
        if version != FORMAT_VERSION {
            return Err(bad(format!("unsupported schedule version {version}")));
        }
        let nprocs: usize = h[2].parse().map_err(|_| bad("bad nprocs"))?;
        let total_slots: u32 = h[3].parse().map_err(|_| bad("bad total_slots"))?;
        let count: usize = h[4].parse().map_err(|_| bad("bad access count"))?;

        let mut entries: Vec<ScheduledIo> = Vec::with_capacity(count);
        for line in lines {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split('\t').collect();
            if f.len() != 10 {
                return Err(bad(format!("record has {} fields, expected 10", f.len())));
            }
            let parse_u64 = |s: &str| s.parse::<u64>().map_err(|_| bad("bad integer field"));
            let direction = match f[8] {
                "R" => IoDirection::Read,
                "W" => IoDirection::Write,
                other => return Err(bad(format!("bad direction `{other}`"))),
            };
            entries.push(ScheduledIo {
                access_index: parse_u64(f[0])? as usize,
                slot: parse_u64(f[1])? as u32,
                io: IoInstance {
                    proc: parse_u64(f[2])? as usize,
                    slot: parse_u64(f[3])? as u32,
                    call: IoCallId(parse_u64(f[4])? as u32),
                    file: FileId(parse_u64(f[5])? as u32),
                    offset: parse_u64(f[6])?,
                    len: parse_u64(f[7])?,
                    direction,
                    length: parse_u64(f[9])? as u32,
                },
            });
        }
        if entries.len() != count {
            return Err(bad(format!(
                "header promises {count} accesses, file holds {}",
                entries.len()
            )));
        }
        ScheduleTable::from_entries(nprocs, total_slots, entries)
            .map_err(|e| bad(format!("inconsistent schedule: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Program;
    use crate::{analyze_slacks, SchedulerConfig, SlotGranularity};
    use sdds_storage::StripingLayout;

    fn sample_table() -> ScheduleTable {
        let mut p = Program::new("t", 2);
        let f = p.add_file(FileId(0), 4 << 20);
        p.push_loop("i", 0, 7, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| e.term("i", 131_072).term("p", 2 << 20),
                65_536,
            );
            b.compute(simkit::SimDuration::from_millis(5));
        });
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        SchedulerConfig::paper_defaults()
            .schedule(&accesses, &trace)
            .unwrap()
    }

    #[test]
    fn round_trips_exactly() {
        let table = sample_table();
        let mut buf = Vec::new();
        table.write_tsv(&mut buf).unwrap();
        let restored = ScheduleTable::read_tsv(&buf[..]).unwrap();
        assert_eq!(table, restored);
    }

    #[test]
    fn header_describes_the_table() {
        let table = sample_table();
        let mut buf = Vec::new();
        table.write_tsv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            format!(
                "sdds-schedule\t1\t2\t{}\t{}",
                table.total_slots(),
                table.scheduled_count()
            )
        );
        assert_eq!(text.lines().count(), 1 + table.scheduled_count());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(ScheduleTable::read_tsv(&b""[..]).is_err());
        assert!(ScheduleTable::read_tsv(&b"nonsense\t1\t2\t3\t4\n"[..]).is_err());
        assert!(ScheduleTable::read_tsv(&b"sdds-schedule\t9\t2\t3\t0\n"[..]).is_err());
        // Truncated record.
        assert!(ScheduleTable::read_tsv(&b"sdds-schedule\t1\t1\t4\t1\n0\t1\t2\n"[..]).is_err());
        // Count mismatch.
        assert!(ScheduleTable::read_tsv(&b"sdds-schedule\t1\t1\t4\t3\n"[..]).is_err());
    }

    #[test]
    fn rejects_inconsistent_schedules() {
        // A record whose process index exceeds nprocs.
        let text = "sdds-schedule\t1\t1\t4\t1\n0\t1\t7\t1\t0\t0\t0\t64\tR\t1\n";
        assert!(ScheduleTable::read_tsv(text.as_bytes()).is_err());
    }
}
