//! Typed errors for compiler-pass validation.

use crate::ir::ProgramError;

/// An error raised while validating or running the compiler passes (trace
/// extraction, slack analysis, scheduling).
///
/// Every variant carries the offending values so callers can render a
/// diagnostic that names the field and its constraint.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The program itself is malformed (structural error, out-of-bounds
    /// access, unsupported size).
    Program(ProgramError),
    /// A scheduler knob is outside its documented range.
    Scheduler {
        /// The offending configuration field.
        field: &'static str,
        /// The rejected value, rendered for the diagnostic.
        value: u64,
        /// Human-readable constraint, e.g. `">= 1"`.
        constraint: &'static str,
    },
    /// A table-based weight function is empty or contains a non-finite
    /// weight.
    Weights {
        /// Index of the offending weight, or `None` for an empty table.
        index: Option<usize>,
    },
    /// The trace has no scheduling slots, so nothing can be placed.
    EmptyTrace,
    /// An access references a process outside the trace.
    ProcOutOfRange {
        /// The offending process rank.
        proc: usize,
        /// Number of processes in the trace.
        nprocs: usize,
    },
    /// An access references a slot outside the trace.
    SlotOutOfRange {
        /// The offending slot.
        slot: u32,
        /// The trace's slot count.
        total_slots: u32,
    },
    /// A schedule entry's access index is outside the table.
    AccessIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of accesses in the table.
        count: usize,
    },
    /// Two schedule entries claim the same access index.
    DuplicateAccessIndex {
        /// The duplicated index.
        index: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Program(e) => write!(f, "invalid program: {e}"),
            CompileError::Scheduler {
                field,
                value,
                constraint,
            } => write!(
                f,
                "scheduler knob `{field}` must be {constraint}, got {value}"
            ),
            CompileError::Weights { index: Some(i) } => {
                write!(
                    f,
                    "weight table entry {i} is not a finite non-negative number"
                )
            }
            CompileError::Weights { index: None } => f.write_str("weight table is empty"),
            CompileError::EmptyTrace => f.write_str("cannot schedule an empty trace"),
            CompileError::ProcOutOfRange { proc, nprocs } => {
                write!(f, "process {proc} out of range (nprocs {nprocs})")
            }
            CompileError::SlotOutOfRange { slot, total_slots } => {
                write!(f, "slot {slot} out of range ({total_slots})")
            }
            CompileError::AccessIndexOutOfRange { index, count } => {
                write!(f, "access index {index} out of range ({count})")
            }
            CompileError::DuplicateAccessIndex { index } => {
                write!(f, "duplicate access index {index}")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for CompileError {
    fn from(e: ProgramError) -> Self {
        CompileError::Program(e)
    }
}
