//! The loop-nest intermediate representation.
//!
//! Programs in the paper's target domain are "structured as a series of
//! loops that operate on multidimensional arrays" (§IV-A, Fig. 5), with
//! MPI-IO calls reading and writing block-shaped file regions whose
//! offsets are affine functions of the loop indices and the process rank.
//! This IR captures exactly that structure: nested loops with affine
//! bounds, I/O calls with affine offset functions, and modeled compute
//! work. The reserved variable `p` denotes the process rank.

use std::fmt;

use sdds_storage::FileId;
use simkit::SimDuration;

use crate::affine::AffineExpr;

/// Whether an I/O call reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoDirection {
    /// `MPI_File_read`-style call.
    Read,
    /// `MPI_File_write`-style call.
    Write,
}

/// Identifier of a static I/O call site in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IoCallId(pub u32);

impl fmt::Display for IoCallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "io@{}", self.0)
    }
}

/// A static I/O call: a fixed-length access whose byte offset is an affine
/// function of the enclosing loop variables and `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct IoCall {
    /// Call-site identifier.
    pub id: IoCallId,
    /// Target file.
    pub file: FileId,
    /// Read or write.
    pub direction: IoDirection,
    /// Byte offset as an affine expression.
    pub offset: AffineExpr,
    /// Access length in bytes.
    pub len: u64,
}

/// A statement of the loop-nest IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var = lower..=upper { body }` with affine bounds (which may
    /// reference outer loop variables and `p`).
    Loop {
        /// Loop variable name.
        var: String,
        /// Inclusive lower bound.
        lower: AffineExpr,
        /// Inclusive upper bound.
        upper: AffineExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// An I/O call.
    Io(IoCall),
    /// Modeled computation attributed to the current scheduling slot.
    Compute(SimDuration),
    /// Advances the slot counter by `slots` without performing I/O: a
    /// compute phase occupying that many scheduling slots (a disk idle
    /// gap), each taking `per_slot` of wall-clock time.
    Skip {
        /// Number of scheduling slots the phase occupies.
        slots: u32,
        /// Modeled compute time per occupied slot.
        per_slot: SimDuration,
    },
}

/// A declared disk-resident file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileDecl {
    /// File identifier.
    pub id: FileId,
    /// Size in bytes (accesses must stay within it).
    pub size: u64,
}

/// A parallel program: `nprocs` processes each executing the same loop
/// nest, distinguished by the reserved variable `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    nprocs: usize,
    files: Vec<FileDecl>,
    body: Vec<Stmt>,
    next_call: u32,
}

impl Program {
    /// Creates an empty program for `nprocs` processes.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero.
    pub fn new(name: &str, nprocs: usize) -> Self {
        assert!(nprocs > 0, "a program needs at least one process");
        Program {
            name: name.to_owned(),
            nprocs,
            files: Vec::new(),
            body: Vec::new(),
            next_call: 0,
        }
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Declared files.
    pub fn files(&self) -> &[FileDecl] {
        &self.files
    }

    /// The top-level statements.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Declares a disk-resident file of `size` bytes and returns its id.
    pub fn add_file(&mut self, id: FileId, size: u64) -> FileId {
        assert!(
            self.files.iter().all(|f| f.id != id),
            "file {id} declared twice"
        );
        self.files.push(FileDecl { id, size });
        id
    }

    /// Appends a top-level loop built through the closure.
    pub fn push_loop<F>(&mut self, var: &str, lower: i64, upper: i64, f: F)
    where
        F: FnOnce(&mut BodyBuilder<'_>),
    {
        let mut body = Vec::new();
        {
            let mut b = BodyBuilder {
                stmts: &mut body,
                next_call: &mut self.next_call,
            };
            f(&mut b);
        }
        self.body.push(Stmt::Loop {
            var: var.to_owned(),
            lower: AffineExpr::constant(lower),
            upper: AffineExpr::constant(upper),
            body,
        });
    }

    /// Appends a top-level I/O call (outside any loop).
    pub fn push_io<F>(
        &mut self,
        direction: IoDirection,
        file: FileId,
        offset: F,
        len: u64,
    ) -> IoCallId
    where
        F: FnOnce(ExprBuilder) -> ExprBuilder,
    {
        let id = IoCallId(self.next_call);
        self.next_call += 1;
        self.body.push(Stmt::Io(IoCall {
            id,
            file,
            direction,
            offset: offset(ExprBuilder::new()).build(),
            len,
        }));
        id
    }

    /// Appends top-level modeled compute work.
    pub fn push_compute(&mut self, cost: SimDuration) {
        self.body.push(Stmt::Compute(cost));
    }

    /// Appends a top-level I/O-free phase occupying `slots` scheduling
    /// slots, each taking `per_slot` of compute time.
    pub fn push_skip(&mut self, slots: u32, per_slot: SimDuration) {
        self.body.push(Stmt::Skip { slots, per_slot });
    }

    /// Checks structural validity: files exist for every I/O call, loop
    /// variables are not shadowed, offsets reference only in-scope
    /// variables (loop variables and `p`), and `p`'s coefficient keeps
    /// offsets within file bounds only at trace time (range checks happen
    /// during interpretation, where concrete values are known).
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let mut scope = vec!["p".to_owned()];
        Self::validate_stmts(&self.body, &mut scope, &self.files)
    }

    fn validate_stmts(
        stmts: &[Stmt],
        scope: &mut Vec<String>,
        files: &[FileDecl],
    ) -> Result<(), ProgramError> {
        for stmt in stmts {
            match stmt {
                Stmt::Loop {
                    var,
                    lower,
                    upper,
                    body,
                } => {
                    if scope.iter().any(|v| v == var) {
                        return Err(ProgramError::ShadowedVariable(var.clone()));
                    }
                    for bound in [lower, upper] {
                        for v in bound.variables() {
                            if !scope.iter().any(|s| s == v) {
                                return Err(ProgramError::UnboundVariable(v.to_owned()));
                            }
                        }
                    }
                    scope.push(var.clone());
                    Self::validate_stmts(body, scope, files)?;
                    scope.pop();
                }
                Stmt::Io(call) => {
                    if !files.iter().any(|f| f.id == call.file) {
                        return Err(ProgramError::UnknownFile(call.file));
                    }
                    if call.len == 0 {
                        return Err(ProgramError::EmptyAccess(call.id));
                    }
                    for v in call.offset.variables() {
                        if !scope.iter().any(|s| s == v) {
                            return Err(ProgramError::UnboundVariable(v.to_owned()));
                        }
                    }
                }
                Stmt::Compute(_) | Stmt::Skip { .. } => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    /// Renders the program as Fig. 5-style pseudocode.
    ///
    /// ```text
    /// program mm (4 processes)
    ///   file0: 1073741824 bytes
    ///   for m = 0, 3 {
    ///     read file0[1048576*m] (1048576 bytes)
    ///     ...
    ///   }
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} ({} processes)", self.name, self.nprocs)?;
        for file in &self.files {
            writeln!(f, "  {}: {} bytes", file.id, file.size)?;
        }
        render_stmts(f, &self.body, 1)
    }
}

/// Writes `stmts` at the given indent depth.
fn render_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], depth: usize) -> fmt::Result {
    let pad = "  ".repeat(depth);
    for stmt in stmts {
        match stmt {
            Stmt::Loop {
                var,
                lower,
                upper,
                body,
            } => {
                writeln!(f, "{pad}for {var} = {lower}, {upper} {{")?;
                render_stmts(f, body, depth + 1)?;
                writeln!(f, "{pad}}}")?;
            }
            Stmt::Io(call) => {
                let verb = match call.direction {
                    IoDirection::Read => "read",
                    IoDirection::Write => "write",
                };
                writeln!(
                    f,
                    "{pad}{verb} {}[{}] ({} bytes)",
                    call.file, call.offset, call.len
                )?;
            }
            Stmt::Compute(cost) => writeln!(f, "{pad}compute {cost}")?,
            Stmt::Skip { slots, per_slot } => {
                writeln!(f, "{pad}compute-phase {slots} slots x {per_slot}")?
            }
        }
    }
    Ok(())
}

/// Builds nested statement lists (loops, I/O calls, compute).
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    stmts: &'a mut Vec<Stmt>,
    next_call: &'a mut u32,
}

impl BodyBuilder<'_> {
    /// Appends a nested loop with constant bounds.
    pub fn loop_<F>(&mut self, var: &str, lower: i64, upper: i64, f: F)
    where
        F: FnOnce(&mut BodyBuilder<'_>),
    {
        self.loop_expr(
            var,
            AffineExpr::constant(lower),
            AffineExpr::constant(upper),
            f,
        );
    }

    /// Appends a nested loop with affine bounds.
    pub fn loop_expr<F>(&mut self, var: &str, lower: AffineExpr, upper: AffineExpr, f: F)
    where
        F: FnOnce(&mut BodyBuilder<'_>),
    {
        let mut body = Vec::new();
        {
            let mut b = BodyBuilder {
                stmts: &mut body,
                next_call: self.next_call,
            };
            f(&mut b);
        }
        self.stmts.push(Stmt::Loop {
            var: var.to_owned(),
            lower,
            upper,
            body,
        });
    }

    /// Appends an I/O call whose offset is built through `offset`.
    pub fn io<F>(&mut self, direction: IoDirection, file: FileId, offset: F, len: u64) -> IoCallId
    where
        F: FnOnce(ExprBuilder) -> ExprBuilder,
    {
        let id = IoCallId(*self.next_call);
        *self.next_call += 1;
        self.stmts.push(Stmt::Io(IoCall {
            id,
            file,
            direction,
            offset: offset(ExprBuilder::new()).build(),
            len,
        }));
        id
    }

    /// Appends modeled compute work.
    pub fn compute(&mut self, cost: SimDuration) {
        self.stmts.push(Stmt::Compute(cost));
    }

    /// Appends an I/O-free phase occupying `slots` scheduling slots, each
    /// taking `per_slot` of compute time.
    pub fn skip(&mut self, slots: u32, per_slot: SimDuration) {
        self.stmts.push(Stmt::Skip { slots, per_slot });
    }
}

/// Fluent builder for affine offset expressions.
#[derive(Debug, Default)]
pub struct ExprBuilder {
    expr: AffineExpr,
}

impl ExprBuilder {
    /// A zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coeff · var`.
    pub fn term(mut self, var: &str, coeff: i64) -> Self {
        self.expr.add_term(var, coeff);
        self
    }

    /// Adds a constant.
    pub fn plus(mut self, c: i64) -> Self {
        self.expr.add_constant(c);
        self
    }

    /// Finishes the expression.
    pub fn build(self) -> AffineExpr {
        self.expr
    }
}

/// Structural errors reported by [`Program::validate`] and trace-time
/// errors from interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A loop variable shadows an outer variable (or `p`).
    ShadowedVariable(String),
    /// An expression references a variable not in scope.
    UnboundVariable(String),
    /// An I/O call targets an undeclared file.
    UnknownFile(FileId),
    /// An I/O call has zero length.
    EmptyAccess(IoCallId),
    /// An access fell outside its file during interpretation.
    OutOfBounds {
        /// The offending call.
        call: IoCallId,
        /// Evaluated byte offset.
        offset: i64,
        /// File size.
        size: u64,
    },
    /// A loop bound evaluated to a negative trip count... upper < lower is
    /// fine (zero iterations); this reports bounds so large the slot
    /// counter would overflow.
    TooManySlots,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::ShadowedVariable(v) => {
                write!(f, "loop variable `{v}` shadows an outer binding")
            }
            ProgramError::UnboundVariable(v) => {
                write!(f, "expression references unbound variable `{v}`")
            }
            ProgramError::UnknownFile(id) => write!(f, "I/O call targets undeclared {id}"),
            ProgramError::EmptyAccess(id) => write!(f, "{id} has zero length"),
            ProgramError::OutOfBounds { call, offset, size } => write!(
                f,
                "{call} accesses offset {offset} outside its file of {size} bytes"
            ),
            ProgramError::TooManySlots => write!(f, "program exceeds the supported slot count"),
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_like() -> Program {
        // The Fig. 5 structure: for m { read U; for n { read V; compute;
        // write W } } over R x R blocks.
        let mut p = Program::new("mm", 4);
        let u = p.add_file(FileId(0), 1 << 30);
        let v = p.add_file(FileId(1), 1 << 30);
        let w = p.add_file(FileId(2), 1 << 30);
        p.push_loop("m", 0, 3, move |b| {
            b.io(IoDirection::Read, u, |e| e.term("m", 1 << 20), 1 << 20);
            b.loop_("n", 0, 3, move |b| {
                b.io(IoDirection::Read, v, |e| e.term("n", 1 << 20), 1 << 20);
                b.compute(SimDuration::from_millis(10));
                b.io(
                    IoDirection::Write,
                    w,
                    |e| e.term("m", 4 << 20).term("n", 1 << 20),
                    1 << 20,
                );
            });
        });
        p
    }

    #[test]
    fn matmul_validates() {
        matmul_like().validate().unwrap();
    }

    #[test]
    fn call_ids_are_sequential() {
        let p = matmul_like();
        // Three static calls: read U, read V, write W.
        fn collect(stmts: &[Stmt], out: &mut Vec<u32>) {
            for s in stmts {
                match s {
                    Stmt::Loop { body, .. } => collect(body, out),
                    Stmt::Io(c) => out.push(c.id.0),
                    Stmt::Compute(_) | Stmt::Skip { .. } => {}
                }
            }
        }
        let mut ids = Vec::new();
        collect(p.body(), &mut ids);
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn shadowing_rejected() {
        let mut p = Program::new("bad", 1);
        let f = p.add_file(FileId(0), 1024);
        p.push_loop("i", 0, 1, move |b| {
            b.loop_("i", 0, 1, move |b| {
                b.io(IoDirection::Read, f, |e| e, 1);
            });
        });
        assert_eq!(
            p.validate(),
            Err(ProgramError::ShadowedVariable("i".into()))
        );
    }

    #[test]
    fn p_is_predeclared_and_reserved() {
        let mut p = Program::new("bad", 2);
        let f = p.add_file(FileId(0), 1024);
        p.push_loop("p", 0, 1, move |b| {
            b.io(IoDirection::Read, f, |e| e, 1);
        });
        assert_eq!(
            p.validate(),
            Err(ProgramError::ShadowedVariable("p".into()))
        );
    }

    #[test]
    fn unbound_variable_rejected() {
        let mut p = Program::new("bad", 1);
        let f = p.add_file(FileId(0), 1024);
        p.push_loop("i", 0, 1, move |b| {
            b.io(IoDirection::Read, f, |e| e.term("q", 8), 1);
        });
        assert_eq!(p.validate(), Err(ProgramError::UnboundVariable("q".into())));
    }

    #[test]
    fn unknown_file_rejected() {
        let mut p = Program::new("bad", 1);
        p.push_io(IoDirection::Read, FileId(9), |e| e, 1);
        assert_eq!(p.validate(), Err(ProgramError::UnknownFile(FileId(9))));
    }

    #[test]
    fn zero_len_rejected() {
        let mut p = Program::new("bad", 1);
        let f = p.add_file(FileId(0), 1024);
        p.push_io(IoDirection::Read, f, |e| e, 0);
        assert!(matches!(p.validate(), Err(ProgramError::EmptyAccess(_))));
    }

    #[test]
    fn duplicate_file_panics() {
        let mut p = Program::new("bad", 1);
        p.add_file(FileId(0), 1024);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.add_file(FileId(0), 2048);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn program_pretty_prints_like_fig5() {
        let p = matmul_like();
        let text = p.to_string();
        assert!(text.contains("program mm (4 processes)"));
        assert!(text.contains("for m = 0, 3 {"));
        assert!(text.contains("for n = 0, 3 {"));
        assert!(text.contains("read file0["));
        assert!(text.contains("write file2["));
        assert!(text.contains("compute 10.000ms"));
        // Nesting is reflected by indentation.
        assert!(text.contains("\n    for n"));
    }

    #[test]
    fn error_display() {
        let e = ProgramError::UnknownFile(FileId(3));
        assert!(e.to_string().contains("file3"));
    }
}
