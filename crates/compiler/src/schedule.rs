//! The data access scheduling algorithms (§IV-B) and the scheduling table.
//!
//! Three variants, all sharing one engine:
//!
//! * the **basic** algorithm (Fig. 11) — all accesses have length 1;
//! * the **extended** algorithm (§IV-B2) — accesses span multiple slots
//!   and are decomposed into unit sub-accesses for reuse computation;
//! * the **θ-constrained** variants (§IV-B3) — at most θ accesses may
//!   target any I/O node in any slot; when no slot satisfies θ, the slot
//!   with the minimum average overflow `E_t` is chosen.
//!
//! Accesses are processed in non-decreasing order of slack length:
//! "data accesses with shorter slacks are more constrained … it makes
//! sense to schedule them first".

use simkit::DetRng;

use crate::error::CompileError;
use crate::reuse::{GroupState, WeightFn};
use crate::slack::SchedulableAccess;
use crate::trace::{IoInstance, ProgramTrace};

/// Scheduler configuration.
///
/// `Eq`/`Hash` let configurations serve as compilation-cache keys: two
/// equal configurations always produce the same scheduling table for the
/// same trace, so cached tables can be reused across experiment cells.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchedulerConfig {
    /// Vertical reuse range δ (Table II default: 20 slots).
    pub delta: u32,
    /// Per-node per-slot access bound θ (Table II default: 4); `None`
    /// disables the performance constraint (§IV-B1/B2 algorithms).
    pub theta: Option<u16>,
    /// Weight function σ (the paper's Eq. 3 by default).
    pub weights: WeightFn,
    /// Seed for the random tie-break among equal reuse factors.
    pub seed: u64,
    /// Cap on the number of candidate slots evaluated per access. Accesses
    /// whose slack exceeds the cap are sampled at evenly spaced points
    /// (always including both slack ends). The paper evaluates every slot;
    /// this engineering bound keeps very long slacks (whole-program input
    /// reads) tractable and is disabled by `None`.
    pub max_candidates: Option<usize>,
}

impl SchedulerConfig {
    /// Table II defaults: δ = 20, θ = 4, linear weights.
    pub fn paper_defaults() -> Self {
        SchedulerConfig {
            delta: 20,
            theta: Some(4),
            weights: WeightFn::Linear,
            seed: 0x5DD5,
            max_candidates: Some(256),
        }
    }

    /// Paper defaults with exhaustive candidate evaluation (every slot in
    /// every slack is scored, exactly as Fig. 11 does).
    pub fn exhaustive() -> Self {
        SchedulerConfig {
            max_candidates: None,
            ..Self::paper_defaults()
        }
    }

    /// The basic/extended algorithms without the θ constraint.
    pub fn without_theta() -> Self {
        SchedulerConfig {
            theta: None,
            ..Self::paper_defaults()
        }
    }

    /// Checks the scheduler's tuning knobs.
    ///
    /// δ may be any value, including 0 (dropping the vertical-reuse decay
    /// entirely is a meaningful ablation); θ and the candidate cap must
    /// leave the algorithm something to choose from; table weights must be
    /// finite and non-negative so reuse factors stay totally ordered.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] naming the first out-of-range knob.
    pub fn validate(&self) -> Result<(), CompileError> {
        if self.theta == Some(0) {
            return Err(CompileError::Scheduler {
                field: "theta",
                value: 0,
                constraint: ">= 1 when set",
            });
        }
        if let Some(cap) = self.max_candidates {
            if cap < 2 {
                return Err(CompileError::Scheduler {
                    field: "max_candidates",
                    value: cap as u64,
                    constraint: ">= 2 when set",
                });
            }
        }
        if let WeightFn::Table(t) = &self.weights {
            if t.is_empty() {
                return Err(CompileError::Weights { index: None });
            }
            for (i, w) in t.iter().enumerate() {
                if !w.is_finite() || *w < 0.0 {
                    return Err(CompileError::Weights { index: Some(i) });
                }
            }
        }
        Ok(())
    }

    /// Runs the scheduling pass.
    ///
    /// Writes (and reads with single-point slacks) are pre-placed at their
    /// fixed slots; movable reads are then placed one by one in
    /// non-decreasing slack order at the slot with the highest reuse
    /// factor, honoring one-access-per-slot-per-process and (optionally)
    /// the θ bound.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when a scheduler knob is out of range
    /// (see [`SchedulerConfig::validate`]), when the trace is empty, or
    /// when an access references a process or slot outside the trace.
    pub fn schedule(
        &self,
        accesses: &[SchedulableAccess],
        trace: &ProgramTrace,
    ) -> Result<ScheduleTable, CompileError> {
        self.validate()?;
        if trace.total_slots == 0 {
            return Err(CompileError::EmptyTrace);
        }
        let nprocs_in_trace = trace.processes.len();
        for a in accesses {
            if a.io.proc >= nprocs_in_trace {
                return Err(CompileError::ProcOutOfRange {
                    proc: a.io.proc,
                    nprocs: nprocs_in_trace,
                });
            }
            if a.io.slot >= trace.total_slots || a.end >= trace.total_slots {
                return Err(CompileError::SlotOutOfRange {
                    slot: a.io.slot.max(a.end),
                    total_slots: trace.total_slots,
                });
            }
        }
        let width = accesses.first().map(|a| a.signature.width()).unwrap_or(1);
        let nprocs = trace.processes.len();
        let mut state = GroupState::new(width, trace.total_slots, nprocs);
        let mut rng = DetRng::new(self.seed);
        let mut points: Vec<u32> = vec![0; accesses.len()];

        // Fixed accesses first: they anchor group signatures and θ counts.
        for a in accesses.iter().filter(|a| !a.movable) {
            state.place(a.io.proc, a.begin, a.io.length, &a.signature);
            points[a.index] = a.begin;
        }

        // Movable accesses in non-decreasing slack order (stable by index).
        let mut order: Vec<&SchedulableAccess> = accesses.iter().filter(|a| a.movable).collect();
        order.sort_by_key(|a| (a.slack_len(), a.index));

        for a in order {
            let slot = self.pick_slot(a, &state, &mut rng);
            state.place(a.io.proc, slot, a.io.length, &a.signature);
            points[a.index] = slot;
        }

        Ok(ScheduleTable::build(
            accesses,
            points,
            nprocs,
            trace.total_slots,
        ))
    }

    /// Chooses the scheduling point for one access given the current state.
    fn pick_slot(&self, a: &SchedulableAccess, state: &GroupState, rng: &mut DetRng) -> u32 {
        let last_start = state.total_slots().saturating_sub(a.io.length).min(a.end);
        let hi = last_start.max(a.begin);
        let span = (hi - a.begin + 1) as usize;
        let mut candidates: Vec<(u32, f64)> = Vec::new();
        // Candidate windows overlap heavily within one access's slack, so
        // the per-slot inverse distances are memoized across candidates
        // (bitwise-identical to recomputing; see `reuse_factor_memo`).
        let memo_lo = (a.begin as i64 - self.delta as i64).max(0) as u32;
        let memo_hi = (hi as i64 + a.io.length as i64 - 1 + self.delta as i64)
            .min(state.total_slots() as i64 - 1);
        let memo_len = (memo_hi - memo_lo as i64 + 1).max(0) as usize;
        let mut memo = vec![f64::NAN; memo_len];
        let wtab = self.weights.table_for(self.delta);
        let consider =
            |state: &GroupState, candidates: &mut Vec<(u32, f64)>, memo: &mut [f64], t: u32| {
                if state.occupied(a.io.proc, t, a.io.length) {
                    return; // the slot is unavailable (Fig. 11 line 8).
                }
                let r = state.reuse_factor_memo(
                    &a.signature,
                    t,
                    a.io.length,
                    self.delta,
                    &wtab,
                    memo_lo,
                    memo,
                );
                candidates.push((t, r));
            };
        match self.max_candidates {
            Some(cap) if span > cap.max(2) => {
                // Evenly sample the slack, always keeping its ends.
                let cap = cap.max(2);
                let step = (span - 1) as f64 / (cap - 1) as f64;
                let mut last = None;
                for k in 0..cap {
                    let t = a.begin + (k as f64 * step).round() as u32;
                    let t = t.min(hi);
                    if last != Some(t) {
                        consider(state, &mut candidates, &mut memo, t);
                        last = Some(t);
                    }
                }
            }
            _ => {
                for t in a.begin..=hi {
                    consider(state, &mut candidates, &mut memo, t);
                }
            }
        }
        if candidates.is_empty() {
            // Every slot in the slack is taken by same-process accesses;
            // fall back to the original program point.
            return a.io.slot.min(last_start.max(a.begin));
        }
        match self.theta {
            None => pick_max_reuse(&candidates, rng),
            Some(theta) => {
                // Check slots in non-increasing reuse order until one
                // satisfies θ at every covered iteration. Reuse factors
                // are finite (validated weights), so total_cmp orders
                // them exactly as partial_cmp would.
                let mut sorted = candidates.clone();
                sorted.sort_by(|x, y| y.1.total_cmp(&x.1));
                for &(t, best_r) in &sorted {
                    if state.theta_ok(&a.signature, t, a.io.length, theta) {
                        // Collect the ties at this reuse level that also
                        // satisfy θ, then tie-break randomly.
                        let ties: Vec<(u32, f64)> = sorted
                            .iter()
                            .filter(|&&(tt, rr)| {
                                rr == best_r && state.theta_ok(&a.signature, tt, a.io.length, theta)
                            })
                            .copied()
                            .collect();
                        return pick_max_reuse(&ties, rng);
                    }
                }
                // No slot satisfies θ: minimize the average overflow E_t.
                let costed: Vec<(u32, f64)> = candidates
                    .iter()
                    .map(|&(t, _)| (t, -state.overflow_cost(&a.signature, t, a.io.length, theta)))
                    .collect();
                pick_max_reuse(&costed, rng)
            }
        }
    }
}

/// Among `(slot, score)` candidates, returns a slot with the maximum
/// score, breaking exact ties uniformly at random (§IV-B1: "If there are
/// multiple slots having the same reuse factor, we randomly choose one").
fn pick_max_reuse(candidates: &[(u32, f64)], rng: &mut DetRng) -> u32 {
    let best = candidates
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::NEG_INFINITY, f64::max);
    let ties: Vec<u32> = candidates
        .iter()
        .filter(|&&(_, r)| r == best)
        .map(|&(t, _)| t)
        .collect();
    match rng.choose(&ties) {
        Some(&t) => t,
        None => {
            // Callers never pass an empty candidate list; fall back to the
            // first candidate (or slot 0) rather than abort mid-schedule.
            debug_assert!(false, "at least one candidate");
            candidates.first().map(|&(t, _)| t).unwrap_or(0)
        }
    }
}

/// One scheduled I/O operation: the instance plus its chosen slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledIo {
    /// Index into the `SchedulableAccess` list.
    pub access_index: usize,
    /// The underlying I/O instance (with its *original* slot).
    pub io: IoInstance,
    /// The slot the scheduler chose.
    pub slot: u32,
}

impl ScheduledIo {
    /// How many slots earlier than its original point the access now
    /// starts (0 if unmoved or moved later).
    pub fn advance(&self) -> u32 {
        self.io.slot.saturating_sub(self.slot)
    }
}

/// The scheduling table the compiler emits for the runtime scheduler: per
/// process, the accesses to perform at each slot (§III: "records this
/// information in a table for each application process").
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleTable {
    nprocs: usize,
    total_slots: u32,
    /// Per process, scheduled entries sorted by (slot, access index).
    per_proc: Vec<Vec<ScheduledIo>>,
    /// Chosen slot per access index.
    points: Vec<u32>,
}

impl ScheduleTable {
    fn build(
        accesses: &[SchedulableAccess],
        points: Vec<u32>,
        nprocs: usize,
        total_slots: u32,
    ) -> Self {
        let mut per_proc: Vec<Vec<ScheduledIo>> = vec![Vec::new(); nprocs];
        for a in accesses {
            per_proc[a.io.proc].push(ScheduledIo {
                access_index: a.index,
                io: a.io,
                slot: points[a.index],
            });
        }
        for entries in &mut per_proc {
            entries.sort_by_key(|e| (e.slot, e.access_index));
        }
        ScheduleTable {
            nprocs,
            total_slots,
            per_proc,
            points,
        }
    }

    /// Reconstructs a table from its scheduled entries (the inverse of
    /// iterating it), validating consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] describing the first inconsistency: an
    /// out-of-range process or slot, a duplicate or out-of-range access
    /// index.
    pub fn from_entries(
        nprocs: usize,
        total_slots: u32,
        entries: Vec<ScheduledIo>,
    ) -> Result<ScheduleTable, CompileError> {
        let n = entries.len();
        let mut points = vec![u32::MAX; n];
        let mut per_proc: Vec<Vec<ScheduledIo>> = vec![Vec::new(); nprocs];
        for e in entries {
            if e.io.proc >= nprocs {
                return Err(CompileError::ProcOutOfRange {
                    proc: e.io.proc,
                    nprocs,
                });
            }
            if e.slot >= total_slots || e.io.slot >= total_slots {
                return Err(CompileError::SlotOutOfRange {
                    slot: e.slot.max(e.io.slot),
                    total_slots,
                });
            }
            if e.access_index >= n {
                return Err(CompileError::AccessIndexOutOfRange {
                    index: e.access_index,
                    count: n,
                });
            }
            if points[e.access_index] != u32::MAX {
                return Err(CompileError::DuplicateAccessIndex {
                    index: e.access_index,
                });
            }
            points[e.access_index] = e.slot;
            per_proc[e.io.proc].push(e);
        }
        for entries in &mut per_proc {
            entries.sort_by_key(|e| (e.slot, e.access_index));
        }
        Ok(ScheduleTable {
            nprocs,
            total_slots,
            per_proc,
            points,
        })
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of scheduling slots.
    pub fn total_slots(&self) -> u32 {
        self.total_slots
    }

    /// Total number of scheduled accesses.
    pub fn scheduled_count(&self) -> usize {
        self.points.len()
    }

    /// The chosen slot of access `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn point_of(&self, index: usize) -> u32 {
        self.points[index]
    }

    /// The scheduled entries of process `proc`, sorted by slot.
    pub fn for_process(&self, proc: usize) -> &[ScheduledIo] {
        &self.per_proc[proc]
    }

    /// Iterates over all scheduled entries.
    pub fn iter(&self) -> impl Iterator<Item = &ScheduledIo> {
        self.per_proc.iter().flatten()
    }

    /// Number of accesses scheduled earlier than their original point.
    pub fn moved_earlier(&self) -> usize {
        self.iter().filter(|e| e.slot < e.io.slot).count()
    }

    /// Mean advance (slots moved earlier) over all accesses.
    pub fn mean_advance(&self) -> f64 {
        let n = self.scheduled_count();
        if n == 0 {
            return 0.0;
        }
        self.iter().map(|e| e.advance() as f64).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IoDirection, Program};
    use crate::slack::analyze_slacks;
    use crate::trace::SlotGranularity;
    use sdds_storage::{FileId, StripingLayout};

    const STRIPE: u64 = 64 * 1024;

    /// Two processes scanning disjoint halves of one input file.
    fn scan_program(nprocs: usize, blocks_per_proc: i64) -> Program {
        let mut p = Program::new("scan", nprocs);
        let f = p.add_file(FileId(0), STRIPE * (nprocs as u64) * blocks_per_proc as u64);
        let stride = STRIPE as i64;
        let proc_span = blocks_per_proc * stride;
        p.push_loop("i", 0, blocks_per_proc - 1, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| e.term("i", stride).term("p", proc_span),
                STRIPE,
            );
            b.compute(simkit::SimDuration::from_millis(10));
        });
        p
    }

    fn schedule_of(p: &Program, cfg: &SchedulerConfig) -> (Vec<SchedulableAccess>, ScheduleTable) {
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let layout = StripingLayout::paper_defaults();
        let accesses = analyze_slacks(&trace, &layout).unwrap();
        let table = cfg.schedule(&accesses, &trace).unwrap();
        (accesses, table)
    }

    #[test]
    fn all_accesses_scheduled_within_slack() {
        let p = scan_program(4, 16);
        let (accesses, table) = schedule_of(&p, &SchedulerConfig::paper_defaults());
        assert_eq!(table.scheduled_count(), accesses.len());
        for a in &accesses {
            let slot = table.point_of(a.index);
            assert!(
                slot >= a.begin && slot <= a.end,
                "access {} scheduled at {slot} outside [{}, {}]",
                a.index,
                a.begin,
                a.end
            );
        }
    }

    #[test]
    fn one_access_per_slot_per_process() {
        let p = scan_program(3, 12);
        let (_, table) = schedule_of(&p, &SchedulerConfig::paper_defaults());
        for proc in 0..3 {
            let mut slots: Vec<u32> = table.for_process(proc).iter().map(|e| e.slot).collect();
            let before = slots.len();
            slots.dedup();
            assert_eq!(slots.len(), before, "process {proc} has a slot collision");
        }
    }

    #[test]
    fn writes_stay_at_original_points() {
        let mut p = Program::new("w", 2);
        let f = p.add_file(FileId(0), 8 * STRIPE);
        p.push_loop("i", 0, 3, move |b| {
            b.io(
                IoDirection::Write,
                f,
                |e| e.term("i", STRIPE as i64).term("p", 4 * STRIPE as i64),
                STRIPE,
            );
        });
        let (accesses, table) = schedule_of(&p, &SchedulerConfig::paper_defaults());
        for a in &accesses {
            assert_eq!(table.point_of(a.index), a.io.slot);
        }
    }

    #[test]
    fn scheduling_clusters_same_node_accesses() {
        // 2 processes × 16 input blocks; with full-prefix slacks the
        // scheduler has freedom to group same-signature accesses.
        let p = scan_program(2, 16);
        let (accesses, table) = schedule_of(&p, &SchedulerConfig::without_theta());
        // Count, per slot, the union of nodes touched; reuse should push
        // the average active-node count below the unscheduled baseline.
        let layout = StripingLayout::paper_defaults();
        let width = layout.io_nodes();
        let mut scheduled_active = [sdds_storage::NodeSet::EMPTY; 16];
        let mut original_active = [sdds_storage::NodeSet::EMPTY; 16];
        for a in &accesses {
            let slot = table.point_of(a.index) as usize;
            scheduled_active[slot] = scheduled_active[slot].union(a.signature.nodes());
            original_active[a.io.slot as usize] =
                original_active[a.io.slot as usize].union(a.signature.nodes());
        }
        let sched_busy: usize = scheduled_active.iter().map(|s| s.len()).sum();
        let orig_busy: usize = original_active.iter().map(|s| s.len()).sum();
        assert!(
            sched_busy <= orig_busy,
            "scheduling should not spread accesses over more node-slots \
             (scheduled {sched_busy} vs original {orig_busy}, width {width})"
        );
    }

    /// A trace skeleton for hand-built access fixtures.
    fn fixture_trace(nprocs: usize, slots: u32) -> ProgramTrace {
        ProgramTrace {
            name: "fixture".into(),
            processes: (0..nprocs)
                .map(|proc| crate::trace::ProcessTrace {
                    proc,
                    slots,
                    compute: vec![simkit::SimDuration::ZERO; slots as usize],
                    ios: Vec::new(),
                })
                .collect(),
            total_slots: slots,
        }
    }

    /// A hand-built movable access.
    fn fixture_access(
        index: usize,
        proc: usize,
        nodes: &[usize],
        begin: u32,
        end: u32,
        orig: u32,
        length: u32,
    ) -> SchedulableAccess {
        SchedulableAccess {
            index,
            io: IoInstance {
                call: crate::ir::IoCallId(index as u32),
                file: FileId(0),
                offset: index as u64 * STRIPE,
                len: STRIPE,
                direction: IoDirection::Read,
                proc,
                slot: orig,
                length,
            },
            begin,
            end,
            signature: crate::Signature::new(
                sdds_storage::NodeSet::from_nodes(nodes.iter().copied()),
                8,
            ),
            producer: None,
            movable: end > begin,
        }
    }

    #[test]
    fn theta_bounds_per_node_load() {
        // Six processes each with one movable access on node 0 and ample
        // slack: with θ = 2 at most two may share any slot.
        let trace = fixture_trace(6, 12);
        let accesses: Vec<SchedulableAccess> = (0..6)
            .map(|i| fixture_access(i, i, &[0], 0, 5, 5, 1))
            .collect();
        let cfg = SchedulerConfig {
            theta: Some(2),
            ..SchedulerConfig::paper_defaults()
        };
        let table = cfg.schedule(&accesses, &trace).unwrap();
        let mut counts = std::collections::HashMap::new();
        for e in table.iter() {
            for node in accesses[e.access_index].signature.nodes().iter() {
                *counts.entry((e.slot, node)).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(max <= 2, "θ=2 violated: max per-node per-slot count {max}");
        // Without θ, reuse maximization piles everything together.
        let free = SchedulerConfig::without_theta()
            .schedule(&accesses, &trace)
            .unwrap();
        let mut free_counts = std::collections::HashMap::new();
        for e in free.iter() {
            *free_counts.entry(e.slot).or_insert(0u32) += 1;
        }
        let free_max = free_counts.values().copied().max().unwrap();
        assert!(
            free_max > 2,
            "expected clustering without θ, got {free_max}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = scan_program(4, 16);
        let (_, t1) = schedule_of(&p, &SchedulerConfig::paper_defaults());
        let (_, t2) = schedule_of(&p, &SchedulerConfig::paper_defaults());
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_valid() {
        let p = scan_program(4, 16);
        let cfg2 = SchedulerConfig {
            seed: 999,
            ..SchedulerConfig::paper_defaults()
        };
        let (accesses, t2) = schedule_of(&p, &cfg2);
        for a in &accesses {
            let slot = t2.point_of(a.index);
            assert!(slot >= a.begin && slot <= a.end);
        }
    }

    #[test]
    fn extended_lengths_respect_occupancy() {
        // Three movable length-2 accesses of one process with room to
        // spare: their spans must not overlap.
        let trace = fixture_trace(1, 8);
        let accesses: Vec<SchedulableAccess> = (0..3)
            .map(|i| fixture_access(i, 0, &[i % 8], 0, 6, 6, 2))
            .collect();
        let table = SchedulerConfig::paper_defaults()
            .schedule(&accesses, &trace)
            .unwrap();
        let mut entries: Vec<&ScheduledIo> = table.for_process(0).iter().collect();
        entries.sort_by_key(|e| e.slot);
        for w in entries.windows(2) {
            assert!(
                w[1].slot >= w[0].slot + w[0].io.length,
                "spans overlap: {} len {} then {}",
                w[0].slot,
                w[0].io.length,
                w[1].slot
            );
        }
    }

    #[test]
    fn moved_earlier_and_advance_stats() {
        // An I/O-free compute phase separates the reads from the start of
        // the program: the scheduler prefetches into the gap.
        let mut p = Program::new("gap", 2);
        let f = p.add_file(FileId(0), 32 * STRIPE);
        p.push_skip(8, simkit::SimDuration::from_millis(10)); // compute-only gap
        p.push_loop("i", 0, 7, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| e.term("i", STRIPE as i64).term("p", 8 * STRIPE as i64),
                STRIPE,
            );
            b.compute(simkit::SimDuration::from_millis(10));
        });
        let (_, table) = schedule_of(&p, &SchedulerConfig::paper_defaults());
        assert!(table.moved_earlier() > 0, "reads should move into the gap");
        assert!(table.mean_advance() > 0.0);
    }

    #[test]
    fn empty_access_list() {
        let mut p = Program::new("noio", 1);
        p.push_compute(simkit::SimDuration::from_millis(1));
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let table = SchedulerConfig::paper_defaults()
            .schedule(&[], &trace)
            .unwrap();
        assert_eq!(table.scheduled_count(), 0);
        assert_eq!(table.mean_advance(), 0.0);
    }
}
