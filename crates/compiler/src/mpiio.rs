//! An MPI-IO-flavored front end for building loop-nest programs.
//!
//! The paper's applications are written against MPI-IO (Fig. 5):
//! `MPI_File_open`, block-granular `MPI_File_read`/`MPI_File_write` inside
//! loop nests, `MPI_File_close`. This module provides that surface on top
//! of the IR so workloads can be transcribed almost verbatim; the
//! middleware-level details the runtime adds (collective buffering, the
//! scheduler threads) live in `sdds-runtime`.
//!
//! Files are addressed in *blocks* of a fixed size, as the paper's codes
//! address matrix blocks; offsets are affine block-index expressions.
//!
//! # Example
//!
//! The Fig. 5 matrix multiplication, transcribed:
//!
//! ```
//! use sdds_compiler::mpiio::MpiApp;
//! use sdds_compiler::SlotGranularity;
//! use simkit::SimDuration;
//!
//! let r = 4; // R x R blocks per matrix
//! let mut app = MpiApp::new("mm", 2);
//! let u = app.file_open("U", 128 * 1024, r);
//! let v = app.file_open("V", 128 * 1024, r);
//! let w = app.file_open("W", 128 * 1024, r * r);
//! app.parallel_for("m", 0, r - 1, |body| {
//!     body.read(u, |e| e.var("m"));              // read next block of U
//!     body.nested_for("n", 0, r - 1, |body| {
//!         body.read(v, |e| e.var("n"));           // read next block of V
//!         body.compute(SimDuration::from_millis(40));
//!         body.write(w, |e| e.scaled("m", r).var("n"));
//!     });
//! });
//! let program = app.close();
//! let trace = program.trace(SlotGranularity::unit()).unwrap();
//! assert_eq!(trace.total_slots, (r * r) as u32);
//! ```

use sdds_storage::FileId;
use simkit::SimDuration;

use crate::affine::AffineExpr;
use crate::ir::{BodyBuilder, ExprBuilder, IoCallId, IoDirection, Program};

/// A handle returned by [`MpiApp::file_open`] (the `fh` of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiFile {
    id: FileId,
    block_bytes: u64,
}

impl MpiFile {
    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.id
    }

    /// The block size this file is addressed in.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

/// A block-index expression builder: affine combinations of loop
/// variables, the process rank `p`, and constants — in *block* units.
#[derive(Debug, Default)]
pub struct BlockExpr {
    expr: AffineExpr,
}

impl BlockExpr {
    /// Adds loop variable `var` with coefficient 1.
    pub fn var(mut self, var: &str) -> Self {
        self.expr.add_term(var, 1);
        self
    }

    /// Adds `coeff · var`.
    pub fn scaled(mut self, var: &str, coeff: i64) -> Self {
        self.expr.add_term(var, coeff);
        self
    }

    /// Adds the process rank with coefficient `coeff` (each process works
    /// on its own region when the file's per-process extent is `coeff`).
    pub fn rank(mut self, coeff: i64) -> Self {
        self.expr.add_term("p", coeff);
        self
    }

    /// Adds a constant block offset.
    pub fn plus(mut self, blocks: i64) -> Self {
        self.expr.add_constant(blocks);
        self
    }
}

/// A program under construction through the MPI-IO surface.
#[derive(Debug)]
pub struct MpiApp {
    program: Program,
    next_file: u32,
}

impl MpiApp {
    /// Starts an application with `nprocs` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero.
    pub fn new(name: &str, nprocs: usize) -> Self {
        MpiApp {
            program: Program::new(name, nprocs),
            next_file: 0,
        }
    }

    /// `MPI_File_open`: declares a file of `blocks_per_rank` blocks *per
    /// process* (ranks address disjoint regions, as the paper's codes do)
    /// and returns its handle. The `name` is documentation only.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or `blocks_per_rank` is not
    /// positive.
    pub fn file_open(&mut self, name: &str, block_bytes: u64, blocks_per_rank: i64) -> MpiFile {
        let _ = name;
        assert!(block_bytes > 0, "block size must be positive");
        assert!(blocks_per_rank > 0, "a file needs at least one block");
        let id = FileId(self.next_file);
        self.next_file += 1;
        let size = self.program.nprocs() as u64 * blocks_per_rank as u64 * block_bytes;
        self.program.add_file(id, size);
        MpiFile { id, block_bytes }
    }

    /// A top-level loop executed by every rank (the paper's codes are
    /// SPMD: each rank runs the same nest over its own file region).
    pub fn parallel_for<F>(&mut self, var: &str, lo: i64, hi: i64, f: F)
    where
        F: FnOnce(&mut MpiBody<'_, '_>),
    {
        self.program.push_loop(var, lo, hi, |b| {
            let mut body = MpiBody { b };
            f(&mut body);
        });
    }

    /// An I/O-free phase occupying `slots` scheduling slots of `per_slot`
    /// compute each (a solver stage between I/O phases).
    pub fn compute_phase(&mut self, slots: u32, per_slot: SimDuration) {
        self.program.push_skip(slots, per_slot);
    }

    /// `MPI_File_close` for every handle: finishes construction and
    /// returns the program.
    pub fn close(self) -> Program {
        self.program
    }

    /// The program built so far (for inspection without closing).
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Loop-body operations available to an MPI rank.
#[derive(Debug)]
pub struct MpiBody<'a, 'b> {
    b: &'a mut BodyBuilder<'b>,
}

impl MpiBody<'_, '_> {
    /// `MPI_File_read`: reads one block of `file` at the block index given
    /// by `index` **within this rank's region** (the rank offset is added
    /// automatically from the file's per-rank extent).
    pub fn read<F>(&mut self, file: MpiFile, index: F) -> IoCallId
    where
        F: FnOnce(BlockExpr) -> BlockExpr,
    {
        self.io(file, IoDirection::Read, index)
    }

    /// `MPI_File_write`: writes one block, addressed like [`MpiBody::read`].
    pub fn write<F>(&mut self, file: MpiFile, index: F) -> IoCallId
    where
        F: FnOnce(BlockExpr) -> BlockExpr,
    {
        self.io(file, IoDirection::Write, index)
    }

    /// Modeled computation attributed to the current iteration.
    pub fn compute(&mut self, cost: SimDuration) {
        self.b.compute(cost);
    }

    /// A nested loop.
    pub fn nested_for<F>(&mut self, var: &str, lo: i64, hi: i64, f: F)
    where
        F: FnOnce(&mut MpiBody<'_, '_>),
    {
        self.b.loop_(var, lo, hi, |b| {
            let mut body = MpiBody { b };
            f(&mut body);
        });
    }

    fn io<F>(&mut self, file: MpiFile, dir: IoDirection, index: F) -> IoCallId
    where
        F: FnOnce(BlockExpr) -> BlockExpr,
    {
        let block_expr = index(BlockExpr::default()).expr;
        let bytes = file.block_bytes as i64;
        self.b.io(
            dir,
            file.id,
            move |mut e: ExprBuilder| {
                // Scale the block expression into bytes and add the rank
                // region base. The per-rank extent is recovered from the
                // file size at trace time; here we thread it through the
                // `p` coefficient directly.
                for (var, coeff) in block_expr.terms() {
                    e = e.term(var, coeff * bytes);
                }
                e.plus(block_expr.constant_part() * bytes)
            },
            file.block_bytes,
        )
    }
}

/// Extends [`MpiApp`] I/O with automatic rank-region addressing: wraps
/// the raw builder so that `read`/`write` block indices are relative to
/// each rank's region of `blocks_per_rank` blocks.
///
/// This is handled by adding `p · blocks_per_rank` to the block index; the
/// helper lives on [`BlockExpr::rank`] for explicit control, and
/// [`MpiAppExt::region_of`] computes the coefficient.
pub trait MpiAppExt {
    /// The per-rank region extent of `file`, in blocks.
    fn region_of(&self, file: MpiFile) -> i64;
}

impl MpiAppExt for MpiApp {
    fn region_of(&self, file: MpiFile) -> i64 {
        let Some(decl) = self.program.files().iter().find(|f| f.id == file.file_id()) else {
            debug_assert!(false, "file was opened through this app");
            return 0;
        };
        (decl.size / file.block_bytes() / self.program.nprocs() as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_slacks, SlotGranularity};
    use sdds_storage::StripingLayout;

    fn fig5(r: i64, nprocs: usize) -> Program {
        let mut app = MpiApp::new("fig5", nprocs);
        let u = app.file_open("U", 128 * 1024, r);
        let v = app.file_open("V", 128 * 1024, r);
        let w = app.file_open("W", 128 * 1024, r * r);
        let ru = app.region_of(u);
        let rv = app.region_of(v);
        let rw = app.region_of(w);
        app.parallel_for("m", 0, r - 1, |body| {
            body.read(u, |e| e.var("m").rank(ru));
            body.nested_for("n", 0, r - 1, |body| {
                body.read(v, |e| e.var("n").rank(rv));
                body.compute(SimDuration::from_millis(40));
                body.write(w, |e| e.scaled("m", r).var("n").rank(rw));
            });
        });
        app.close()
    }

    #[test]
    fn fig5_structure() {
        let p = fig5(4, 2);
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        assert_eq!(trace.total_slots, 16);
        // Per rank: 4 U reads + 16 V reads + 16 W writes.
        assert_eq!(trace.io_count(), 2 * (4 + 16 + 16));
    }

    #[test]
    fn ranks_are_disjoint() {
        let p = fig5(3, 2);
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        for file in 0..3u32 {
            let mut max0 = 0;
            let mut min1 = u64::MAX;
            for io in trace.all_ios().filter(|io| io.file == FileId(file)) {
                if io.proc == 0 {
                    max0 = max0.max(io.offset + io.len);
                } else {
                    min1 = min1.min(io.offset);
                }
            }
            assert!(max0 <= min1, "rank regions overlap in file{file}");
        }
    }

    #[test]
    fn accesses_stay_in_bounds() {
        // trace() verifies bounds internally; this exercises odd shapes.
        for r in [1, 2, 5] {
            for nprocs in [1, 3] {
                fig5(r, nprocs).trace(SlotGranularity::unit()).unwrap();
            }
        }
    }

    #[test]
    fn compute_phase_creates_gap_slots() {
        let mut app = MpiApp::new("gapped", 1);
        let f = app.file_open("data", 64 * 1024, 4);
        app.parallel_for("i", 0, 3, |body| {
            body.read(f, |e| e.var("i"));
        });
        app.compute_phase(3, SimDuration::from_secs(1));
        let p = app.close();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        assert_eq!(trace.total_slots, 4 + 3);
        let tail_compute: SimDuration = trace.processes[0].compute[4..].iter().copied().sum();
        assert_eq!(tail_compute, SimDuration::from_secs(3));
    }

    #[test]
    fn slacks_flow_through_the_front_end() {
        // A write phase then a read-back: the slack analysis must see the
        // producer through the MPI-IO surface.
        let mut app = MpiApp::new("wr", 2);
        let f = app.file_open("data", 64 * 1024, 8);
        let region = app.region_of(f);
        app.parallel_for("i", 0, 3, |body| {
            body.write(f, |e| e.var("i").rank(region));
            body.compute(SimDuration::from_millis(1));
        });
        app.parallel_for("j", 0, 3, |body| {
            body.read(f, |e| e.var("j").rank(region));
            body.compute(SimDuration::from_millis(1));
        });
        let p = app.close();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        let produced = accesses
            .iter()
            .filter(|a| a.is_read() && a.producer.is_some())
            .count();
        assert_eq!(produced, 8, "every read-back should be produced");
    }
}
