//! Symbolic (closed-form) producer analysis — the Omega-library path.
//!
//! The paper resolves slacks with the Omega polyhedral library "when loop
//! bounds and data references are affine functions of enclosing loop
//! indices and loop-independent variables" (§IV-A). For the common phase
//! shape — a sequence of top-level loops whose bodies perform affine
//! block I/O — the producing write of a read can be computed *without
//! enumerating iterations*: the write's iteration index is the solution
//! of a linear Diophantine equation over the loop variable and the
//! process rank.
//!
//! This module implements that closed form. [`SymbolicAnalysis::try_new`]
//! accepts programs in the supported shape (anything else returns `None`
//! and the caller falls back to the profiling path, exactly as the paper
//! does); [`SymbolicAnalysis::producer_of`] answers last-writer queries in
//! O(write-calls × nprocs) independent of loop trip counts. Property
//! tests cross-validate it against the trace-based
//! [`ProducerIndex`](crate::polyhedral::ProducerIndex).

use sdds_storage::FileId;

use crate::ir::{IoCall, IoDirection, Program, Stmt};
use crate::trace::IoInstance;

/// One affine I/O call site in a supported program: `offset = a + b·i +
/// c·p` for loop variable `i ∈ [lo, hi]`, executing at slot
/// `slot_base + (i − lo)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AffineSite {
    file: FileId,
    len: u64,
    direction: IoDirection,
    /// Constant term `a`.
    a: i64,
    /// Loop-variable coefficient `b` (zero when the call ignores the
    /// loop variable).
    b: i64,
    /// Rank coefficient `c`.
    c: i64,
    lo: i64,
    hi: i64,
    slot_base: u32,
}

impl AffineSite {
    /// The slot at which iteration `i` of this site executes.
    fn slot_of(&self, i: i64) -> u32 {
        self.slot_base + (i - self.lo) as u32
    }

    /// All `(iteration, rank)` solutions of `a + b·i + c·q == offset`
    /// with `i ∈ [lo, hi]`, `q ∈ [0, nprocs)` — at most one `i` per rank,
    /// so the result is tiny.
    fn solutions(&self, offset: i64, nprocs: usize) -> Vec<(i64, usize)> {
        let mut out = Vec::new();
        for q in 0..nprocs as i64 {
            let rhs = offset - self.a - self.c * q;
            if self.b == 0 {
                // The call writes the same range every iteration: any
                // iteration matches when the constant part does; the
                // *last* iteration is the latest writer.
                if rhs == 0 {
                    out.push((self.hi, q as usize));
                    // Earlier iterations also match; callers needing the
                    // latest-before-a-slot ask through `solutions_before`.
                }
            } else if rhs % self.b == 0 {
                let i = rhs / self.b;
                if i >= self.lo && i <= self.hi {
                    out.push((i, q as usize));
                }
            }
        }
        out
    }
}

/// Closed-form producer analysis over a supported program.
#[derive(Debug, Clone)]
pub struct SymbolicAnalysis {
    nprocs: usize,
    writes: Vec<AffineSite>,
}

impl SymbolicAnalysis {
    /// Builds the analysis if `program` has the supported shape: a
    /// sequence of top-level statements where every loop has constant
    /// bounds, contains no nested loops, and every I/O offset is affine in
    /// the loop variable and `p` only.
    ///
    /// Returns `None` when any construct falls outside that class (the
    /// caller then uses the profiling path).
    pub fn try_new(program: &Program) -> Option<SymbolicAnalysis> {
        let mut writes = Vec::new();
        let mut slot_cursor: u32 = 0;
        for stmt in program.body() {
            match stmt {
                Stmt::Loop {
                    var,
                    lower,
                    upper,
                    body,
                } => {
                    if !lower.is_constant() || !upper.is_constant() {
                        return None;
                    }
                    let lo = lower.constant_part();
                    let hi = upper.constant_part();
                    let mut has_io = false;
                    for inner in body {
                        match inner {
                            Stmt::Io(call) => {
                                has_io = true;
                                let site = Self::site_of(call, var, lo, hi, slot_cursor)?;
                                if call.direction == IoDirection::Write {
                                    writes.push(site);
                                }
                            }
                            Stmt::Compute(_) => {}
                            // Nested loops or skips inside a slot loop put
                            // the slot arithmetic outside this closed form.
                            Stmt::Loop { .. } | Stmt::Skip { .. } => return None,
                        }
                    }
                    if hi >= lo && has_io {
                        slot_cursor = slot_cursor.checked_add((hi - lo + 1) as u32)?;
                    }
                }
                Stmt::Skip { slots, .. } => {
                    slot_cursor = slot_cursor.checked_add(*slots)?;
                }
                Stmt::Io(call) => {
                    // Top-level call: a degenerate single-iteration site.
                    let site = Self::site_of(call, "", 0, 0, slot_cursor)?;
                    if call.direction == IoDirection::Write {
                        writes.push(site);
                    }
                }
                Stmt::Compute(_) => {}
            }
        }
        Some(SymbolicAnalysis {
            nprocs: program.nprocs(),
            writes,
        })
    }

    fn site_of(call: &IoCall, var: &str, lo: i64, hi: i64, slot_base: u32) -> Option<AffineSite> {
        // The offset may reference only the loop variable and `p`.
        for v in call.offset.variables() {
            if v != var && v != "p" {
                return None;
            }
        }
        Some(AffineSite {
            file: call.file,
            len: call.len,
            direction: call.direction,
            a: call.offset.constant_part(),
            b: call.offset.coeff(var),
            c: call.offset.coeff("p"),
            lo,
            hi,
            slot_base,
        })
    }

    /// The last write of exactly `read`'s byte range strictly before
    /// `read.slot`, as `(process, slot)` — computed symbolically.
    pub fn last_writer_before(&self, read: &IoInstance) -> Option<(usize, u32)> {
        self.writer_query(read, |slot| slot < read.slot, true)
    }

    /// The earliest write of exactly `read`'s byte range at or after
    /// `read.slot` (the negative-slack case).
    pub fn first_writer_at_or_after(&self, read: &IoInstance) -> Option<(usize, u32)> {
        self.writer_query(read, |slot| slot >= read.slot, false)
    }

    fn writer_query<F>(&self, read: &IoInstance, accept: F, want_max: bool) -> Option<(usize, u32)>
    where
        F: Fn(u32) -> bool,
    {
        let mut best: Option<(usize, u32)> = None;
        for site in &self.writes {
            if site.file != read.file || site.len != read.len {
                continue;
            }
            for (i, q) in site.solutions(read.offset as i64, self.nprocs) {
                // For repeated same-range writers (b == 0) the latest
                // acceptable iteration is wanted; scan the range bounds.
                let candidates: &[i64] = if site.b == 0 {
                    // All iterations write the range; clamp to the one
                    // closest to the boundary the query cares about.
                    &[site.lo, site.hi]
                } else {
                    &[i]
                };
                for &cand in candidates {
                    // For b == 0 every iteration in [lo, hi] matches, so
                    // the acceptable slot nearest the boundary wins; for
                    // b != 0 only `cand == i` exists.
                    let slots: Box<dyn Iterator<Item = i64>> = if site.b == 0 {
                        Box::new(site.lo..=site.hi)
                    } else {
                        Box::new(std::iter::once(cand))
                    };
                    for it in slots {
                        let slot = site.slot_of(it);
                        if !accept(slot) {
                            continue;
                        }
                        let better = match best {
                            None => true,
                            Some((_, s)) => {
                                if want_max {
                                    slot > s
                                } else {
                                    slot < s
                                }
                            }
                        };
                        if better {
                            best = Some((q, slot));
                        }
                    }
                    if site.b == 0 {
                        break; // the lo..=hi scan above covered everything
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polyhedral::ProducerIndex;
    use crate::{analyze_slacks, SlotGranularity};
    use sdds_storage::StripingLayout;
    use simkit::SimDuration;

    const BLK: i64 = 128 * 1024;

    /// Write phase then read phase, ranks on disjoint regions.
    fn two_phase(nprocs: usize, blocks: i64, gap: u32) -> Program {
        let span = blocks * BLK;
        let mut p = Program::new("sym", nprocs);
        let f = p.add_file(FileId(0), (nprocs as i64 * span) as u64);
        p.push_loop("i", 0, blocks - 1, move |b| {
            b.io(
                IoDirection::Write,
                f,
                |e| e.term("i", BLK).term("p", span),
                BLK as u64,
            );
            b.compute(SimDuration::from_millis(1));
        });
        if gap > 0 {
            p.push_skip(gap, SimDuration::from_millis(10));
        }
        p.push_loop("j", 0, blocks - 1, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| e.term("j", BLK).term("p", span),
                BLK as u64,
            );
            b.compute(SimDuration::from_millis(1));
        });
        p
    }

    #[test]
    fn matches_trace_based_analysis() {
        for nprocs in [1, 3] {
            for gap in [0u32, 4] {
                let p = two_phase(nprocs, 5, gap);
                let sym = SymbolicAnalysis::try_new(&p).expect("supported shape");
                let trace = p.trace(SlotGranularity::unit()).unwrap();
                let idx = ProducerIndex::build(&trace);
                for io in trace
                    .all_ios()
                    .filter(|io| io.direction == IoDirection::Read)
                {
                    let expected = idx.last_exact_writer_before(io).map(|(s, q)| (q, s));
                    assert_eq!(
                        sym.last_writer_before(io),
                        expected,
                        "mismatch for read at slot {} offset {}",
                        io.slot,
                        io.offset
                    );
                }
            }
        }
    }

    #[test]
    fn no_enumeration_needed_for_huge_loops() {
        // A trip count far beyond anything enumerable: the closed form
        // answers instantly.
        let blocks: i64 = 40_000_000;
        let span = blocks * BLK;
        let mut p = Program::new("huge", 2);
        let f = p.add_file(FileId(0), (2 * span) as u64);
        p.push_loop("i", 0, blocks - 1, move |b| {
            b.io(
                IoDirection::Write,
                f,
                |e| e.term("i", BLK).term("p", span),
                BLK as u64,
            );
        });
        let sym = SymbolicAnalysis::try_new(&p).expect("supported");
        // A read of process 1's block 29,999,999 placed "after" the loop.
        let read = IoInstance {
            call: crate::ir::IoCallId(99),
            file: FileId(0),
            offset: (span + 29_999_999 * BLK) as u64,
            len: BLK as u64,
            direction: IoDirection::Read,
            proc: 0,
            slot: 39_999_999,
            length: 1,
        };
        let (q, slot) = sym.last_writer_before(&read).expect("found");
        assert_eq!(q, 1);
        assert_eq!(slot, 29_999_999);
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        // Nested loops fall back to profiling.
        let mut p = Program::new("nested", 1);
        let f = p.add_file(FileId(0), (BLK * 16) as u64);
        p.push_loop("i", 0, 3, move |b| {
            b.loop_("j", 0, 3, move |b| {
                b.io(
                    IoDirection::Read,
                    f,
                    |e| e.term("i", 4 * BLK).term("j", BLK),
                    BLK as u64,
                );
            });
        });
        assert!(SymbolicAnalysis::try_new(&p).is_none());
    }

    #[test]
    fn repeated_range_writer_takes_latest() {
        // The same block written every iteration (b = 0): the latest
        // acceptable iteration is the producer.
        let mut p = Program::new("rewrite", 1);
        let f = p.add_file(FileId(0), BLK as u64);
        p.push_loop("i", 0, 9, move |b| {
            b.io(IoDirection::Write, f, |e| e, BLK as u64);
        });
        let sym = SymbolicAnalysis::try_new(&p).expect("supported");
        let read = IoInstance {
            call: crate::ir::IoCallId(9),
            file: FileId(0),
            offset: 0,
            len: BLK as u64,
            direction: IoDirection::Read,
            proc: 0,
            slot: 7,
            length: 1,
        };
        assert_eq!(sym.last_writer_before(&read), Some((0, 6)));
        assert_eq!(sym.first_writer_at_or_after(&read), Some((0, 7)));
    }

    #[test]
    fn agrees_with_full_slack_analysis_on_workload_shapes() {
        // The two-phase program through the complete pipeline: slacks
        // derived from the symbolic producers must equal analyze_slacks's.
        let p = two_phase(2, 6, 3);
        let sym = SymbolicAnalysis::try_new(&p).expect("supported");
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        for a in accesses.iter().filter(|a| a.is_read()) {
            let expected = sym.last_writer_before(&a.io);
            assert_eq!(a.producer, expected, "pipeline/symbolic divergence");
        }
    }
}
