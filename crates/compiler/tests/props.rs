//! Property tests for the compiler: signature metric laws, slack analysis
//! against brute force, and scheduling invariants on random programs.

use proptest::prelude::*;
use sdds_compiler::ir::{IoDirection, Program};
use sdds_compiler::{analyze_slacks, SchedulerConfig, Signature, SlotGranularity};
use sdds_storage::{FileId, NodeSet, StripingLayout};
use simkit::SimDuration;

const STRIPE: i64 = 64 * 1024;

/// A random two-phase program: a write pass over per-process blocks, an
/// optional compute gap, then a read pass over a (possibly shifted) region.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        1usize..5, // procs
        1i64..12,  // blocks per proc
        0u32..6,   // gap slots
        0i64..3,   // read shift (blocks), may create partial overlap
        1i64..4,   // block size in stripes
    )
        .prop_map(|(procs, blocks, gap, shift, stripes)| {
            let blk = stripes * STRIPE;
            let span = blocks * blk + STRIPE;
            let mut p = Program::new("prop", procs);
            let f = p.add_file(
                FileId(0),
                ((procs as i64) * span + (blocks + shift) * blk + blk) as u64,
            );
            p.push_loop("i", 0, blocks - 1, move |b| {
                b.io(
                    IoDirection::Write,
                    f,
                    |e| e.term("p", span).term("i", blk),
                    blk as u64,
                );
                b.compute(SimDuration::from_millis(5));
            });
            if gap > 0 {
                p.push_skip(gap, SimDuration::from_millis(20));
            }
            p.push_loop("j", 0, blocks - 1, move |b| {
                b.io(
                    IoDirection::Read,
                    f,
                    |e| e.term("p", span).term("j", blk).plus(shift * blk),
                    blk as u64,
                );
                b.compute(SimDuration::from_millis(5));
            });
            p
        })
}

proptest! {
    /// The paper's distance metric: bounds, symmetry, and the identity
    /// distance(g, g) = n − |g|.
    #[test]
    fn distance_metric_laws(
        xs in prop::collection::btree_set(0usize..16, 0..10),
        ys in prop::collection::btree_set(0usize..16, 0..10),
    ) {
        let a = Signature::new(NodeSet::from_nodes(xs.iter().copied()), 16);
        let b = Signature::new(NodeSet::from_nodes(ys.iter().copied()), 16);
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        prop_assert_eq!(a.distance(&a), 16 - xs.len());
        // distance = n − similarity + difference, with the components
        // recomputed from raw sets.
        let sim = xs.intersection(&ys).count();
        let diff = xs.symmetric_difference(&ys).count();
        prop_assert_eq!(a.distance(&b), 16 - sim + diff);
        // Bounds: [n − min(|a|,|b|), n + |a| + |b|].
        let d = a.distance(&b);
        prop_assert!(d >= 16 - xs.len().min(ys.len()));
        prop_assert!(d <= 16 + xs.len() + ys.len());
    }

    /// Slack analysis agrees with a brute-force scan over all writes.
    #[test]
    fn slack_matches_brute_force(program in arb_program()) {
        let trace = program.trace(SlotGranularity::unit()).unwrap();
        let layout = StripingLayout::paper_defaults();
        let accesses = analyze_slacks(&trace, &layout).unwrap();
        let all: Vec<_> = trace.all_ios().collect();
        for a in &accesses {
            if !a.is_read() {
                prop_assert_eq!(a.begin, a.io.slot);
                prop_assert_eq!(a.end, a.io.slot);
                continue;
            }
            // Brute force: last overlapping write strictly before the read.
            let brute = all
                .iter()
                .filter(|w| {
                    w.direction == IoDirection::Write
                        && w.overlaps(&a.io)
                        && w.slot < a.io.slot
                })
                .map(|w| w.slot)
                .max();
            match brute {
                Some(w) => {
                    prop_assert_eq!(
                        a.producer.map(|p| p.1), Some(w),
                        "producer mismatch for read at slot {}", a.io.slot
                    );
                    prop_assert_eq!(a.begin, (w + 1).min(trace.total_slots - 1));
                    prop_assert_eq!(a.end, a.io.slot.max(a.begin));
                }
                None => {
                    // Either unproduced (prefix slack) or a future writer
                    // (negative slack).
                    if a.producer.is_none() {
                        prop_assert_eq!(a.begin, 0);
                        prop_assert_eq!(a.end, a.io.slot);
                    } else {
                        let (_, w) = a.producer.unwrap();
                        prop_assert!(w >= a.io.slot, "future producer expected");
                        prop_assert_eq!(a.begin, a.end);
                    }
                }
            }
        }
    }

    /// Scheduling invariants hold for every random program under both the
    /// unconstrained and the θ-bounded algorithms.
    #[test]
    fn schedule_invariants(program in arb_program(), theta in 1u16..5) {
        let trace = program.trace(SlotGranularity::unit()).unwrap();
        let layout = StripingLayout::paper_defaults();
        let accesses = analyze_slacks(&trace, &layout).unwrap();
        for config in [
            SchedulerConfig::without_theta(),
            SchedulerConfig {
                theta: Some(theta),
                ..SchedulerConfig::paper_defaults()
            },
        ] {
            let table = config.schedule(&accesses, &trace).unwrap();
            prop_assert_eq!(table.scheduled_count(), accesses.len());
            for a in &accesses {
                let slot = table.point_of(a.index);
                prop_assert!(
                    slot >= a.begin && slot <= a.end,
                    "access {} at {} outside slack [{}, {}]",
                    a.index, slot, a.begin, a.end
                );
                if !a.movable {
                    prop_assert_eq!(slot, a.io.slot);
                }
            }
            // One movable access per slot per process (fixed accesses and
            // the saturation fallback may legitimately collide).
            for proc in 0..trace.processes.len() {
                let mut seen = std::collections::HashSet::new();
                for e in table.for_process(proc) {
                    if accesses[e.access_index].movable {
                        prop_assert!(
                            seen.insert(e.slot),
                            "process {proc} has two movable accesses at slot {}",
                            e.slot
                        );
                    }
                }
            }
        }
    }

    /// The same seed yields the same schedule; the scheduler is a pure
    /// function of (accesses, trace, config).
    #[test]
    fn schedule_deterministic(program in arb_program()) {
        let trace = program.trace(SlotGranularity::unit()).unwrap();
        let layout = StripingLayout::paper_defaults();
        let accesses = analyze_slacks(&trace, &layout).unwrap();
        let config = SchedulerConfig::paper_defaults();
        let a = config.schedule(&accesses, &trace).unwrap();
        let b = config.schedule(&accesses, &trace).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Traces are invariant to the interpreter pass count and respect the
    /// declared granularity: grouped slots never exceed unit slots.
    #[test]
    fn granularity_coarsens_monotonically(program in arb_program(), d in 2u32..5) {
        let unit = program.trace(SlotGranularity::unit()).unwrap();
        let grouped = program.trace(SlotGranularity::grouped(d)).unwrap();
        prop_assert!(grouped.total_slots <= unit.total_slots);
        prop_assert_eq!(grouped.io_count(), unit.io_count());
        // Grouped slots map each instance to slot/d.
        for (u, g) in unit.all_ios().zip(grouped.all_ios()) {
            prop_assert_eq!(g.slot, u.slot / d);
        }
    }
}

proptest! {
    /// The symbolic (Omega-path) producer analysis agrees with the
    /// trace-based profiling path on every supported random program.
    #[test]
    fn symbolic_matches_profiling(program in arb_program()) {
        use sdds_compiler::symbolic::SymbolicAnalysis;
        use sdds_compiler::polyhedral::ProducerIndex;
        // arb_program produces flat two-phase loops: always supported.
        let sym = SymbolicAnalysis::try_new(&program).expect("supported shape");
        let trace = program.trace(SlotGranularity::unit()).unwrap();
        let idx = ProducerIndex::build(&trace);
        for io in trace.all_ios() {
            if io.direction != IoDirection::Read {
                continue;
            }
            prop_assert_eq!(
                sym.last_writer_before(io),
                idx.last_exact_writer_before(io).map(|(s, q)| (q, s)),
                "last-writer mismatch at slot {}", io.slot
            );
            prop_assert_eq!(
                sym.first_writer_at_or_after(io),
                idx.first_exact_writer_at_or_after(io).map(|(s, q)| (q, s)),
                "first-writer mismatch at slot {}", io.slot
            );
        }
    }
}
