//! Minimal, workspace-local stand-in for the `proptest` crate.
//!
//! The build environment is fully offline, so the real crates.io
//! `proptest` cannot be fetched. This shim implements exactly the API
//! subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges
//!   and tuples,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`any`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`].
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from fixed per-case seeds (fully deterministic across runs
//! and platforms, which the CI pipeline relies on), and there is no
//! shrinking — a failing case panics with the ordinary assertion message.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the simulator-heavy properties in
        // this workspace are expensive, so the shim defaults lower. Tests
        // that need more cases say so explicitly via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// The shim's case-generation RNG (SplitMix64; deterministic per case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the `case`-th case of a property.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking, so a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// One erased branch of a [`Union`]: a closure producing a value.
pub type UnionBranch<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A uniform choice among boxed branches (built by [`prop_oneof!`]).
pub struct Union<V> {
    branches: Vec<UnionBranch<V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} branches)", self.branches.len())
    }
}

impl<V> Union<V> {
    /// Builds a union from its branches.
    pub fn new(branches: Vec<UnionBranch<V>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs a branch");
        Union { branches }
    }

    /// Erases one strategy into a branch closure.
    pub fn branch<S>(s: S) -> UnionBranch<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.branches.len() as u64) as usize;
        (self.branches[i])(rng)
    }
}

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A `Vec` of `size.start..size.end` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` built from up to `size.end - 1` generated elements
    /// (duplicates collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };

    /// Mirrors real proptest's `prelude::prop` module alias
    /// (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::branch($strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = crate::collection::vec(0u32..100, 1..20);
        let a: Vec<Vec<u32>> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case(c)))
            .collect();
        let b: Vec<Vec<u32>> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases(x in 0u8..10, ys in prop::collection::vec(0u64..5, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 4);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 5).count(), 0);
        }
    }

    proptest! {
        /// prop_oneof mixes branches of different concrete strategy types.
        #[test]
        fn oneof_mixes_branches(v in prop_oneof![
            (0u64..10).prop_map(|x| x as i64),
            (0u64..10).prop_map(|x| -(x as i64) - 1),
        ]) {
            prop_assert!((-10..10).contains(&v));
        }
    }
}
