//! Property tests for the disk model: conservation laws over arbitrary
//! request streams and power-state command sequences.

use proptest::prelude::*;
use sdds_disk::{Disk, DiskParams, DiskRequest, RequestKind, Rpm, RpmChangePriority};
use simkit::SimTime;

/// An arbitrary workload step.
#[derive(Debug, Clone)]
enum Step {
    Submit {
        gap_us: u64,
        lba: u64,
        sectors: u32,
        write: bool,
    },
    SpinDown {
        gap_us: u64,
    },
    SpinUp {
        gap_us: u64,
    },
    Rpm {
        gap_us: u64,
        level: usize,
        immediate: bool,
    },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..2_000_000, 0u64..1_000_000, 1u32..600, any::<bool>()).prop_map(
            |(gap_us, lba, sectors, write)| Step::Submit {
                gap_us,
                lba,
                sectors,
                write
            }
        ),
        (0u64..30_000_000).prop_map(|gap_us| Step::SpinDown { gap_us }),
        (0u64..30_000_000).prop_map(|gap_us| Step::SpinUp { gap_us }),
        (0u64..10_000_000, 0usize..8, any::<bool>()).prop_map(|(gap_us, level, immediate)| {
            Step::Rpm {
                gap_us,
                level,
                immediate,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any interleaving of requests and power commands:
    /// * every submitted request is eventually completed,
    /// * accounted residency equals elapsed simulated time,
    /// * energy equals the sum of the per-state buckets,
    /// * completions are causally ordered (completion >= arrival).
    #[test]
    fn disk_conservation_laws(steps in prop::collection::vec(arb_step(), 1..60)) {
        let params = DiskParams::paper_defaults();
        let levels = params.rpm_levels();
        let mut disk = Disk::new(params.clone()).unwrap();
        let mut now = SimTime::ZERO;
        let mut submitted = 0u64;
        let mut id = 0u64;
        for step in steps {
            match step {
                Step::Submit { gap_us, lba, sectors, write } => {
                    now += simkit::SimDuration::from_micros(gap_us);
                    let kind = if write { RequestKind::Write } else { RequestKind::Read };
                    let lba = lba % (params.total_sectors() - 1_000);
                    disk.submit(DiskRequest::new(id, kind, lba, sectors), now);
                    id += 1;
                    submitted += 1;
                }
                Step::SpinDown { gap_us } => {
                    now += simkit::SimDuration::from_micros(gap_us);
                    let _ = disk.start_spin_down(now);
                }
                Step::SpinUp { gap_us } => {
                    now += simkit::SimDuration::from_micros(gap_us);
                    let _ = disk.start_spin_up(now);
                }
                Step::Rpm { gap_us, level, immediate } => {
                    now += simkit::SimDuration::from_micros(gap_us);
                    let target = levels[level % levels.len()];
                    let priority = if immediate {
                        RpmChangePriority::Immediate
                    } else {
                        RpmChangePriority::WhenIdle
                    };
                    let _ = disk.request_rpm_change(now, target, priority);
                }
            }
        }
        // Let everything drain: generous horizon (every request takes far
        // less than a minute even through spin cycles).
        let horizon = now + simkit::SimDuration::from_secs(120 + 40 * submitted);
        disk.finish(horizon);
        let done = disk.drain_completions();
        prop_assert_eq!(done.len() as u64, submitted, "requests lost");
        prop_assert_eq!(disk.outstanding(), 0);
        for c in &done {
            prop_assert!(c.completion >= c.arrival);
            prop_assert!(c.service_start >= c.arrival);
            prop_assert!(c.completion >= c.service_start);
        }
        // Time conservation.
        let accounted = disk.energy().total_time().as_micros();
        prop_assert_eq!(accounted, horizon.as_micros(), "unaccounted time");
        // Energy closure.
        let total = disk.energy().total_joules();
        let by_state: f64 = disk.energy().iter().map(|(_, e)| e.joules).sum();
        prop_assert!((total - by_state).abs() < 1e-6);
        // Energy is bounded by the envelope of max and min powers.
        let hours = horizon.as_micros() as f64 / 1e6;
        prop_assert!(total <= 44.8 * hours + 1e-6);
        prop_assert!(total >= 3.0 * hours - 1e-6); // > electronics floor
    }

    /// A disk left alone at any reachable state stays consistent: finishing
    /// twice at increasing times accrues idle-family energy only.
    #[test]
    fn idle_disk_energy_is_linear(secs_a in 1u64..100, secs_b in 1u64..100) {
        let mut d1 = Disk::new(DiskParams::paper_defaults()).unwrap();
        d1.finish(SimTime::ZERO + simkit::SimDuration::from_secs(secs_a));
        let mut d2 = Disk::new(DiskParams::paper_defaults()).unwrap();
        d2.finish(SimTime::ZERO + simkit::SimDuration::from_secs(secs_a + secs_b));
        let rate1 = d1.energy().total_joules() / secs_a as f64;
        let rate2 = d2.energy().total_joules() / (secs_a + secs_b) as f64;
        prop_assert!((rate1 - 17.1).abs() < 1e-6);
        prop_assert!((rate2 - 17.1).abs() < 1e-6);
    }

    /// Service time is monotone in request size at any speed.
    #[test]
    fn bigger_requests_take_longer(sectors_small in 1u32..200, extra in 1u32..400, level in 0usize..8) {
        use sdds_disk::service::service_timing;
        let params = DiskParams::paper_defaults();
        let levels = params.rpm_levels();
        let rpm: Rpm = levels[level % levels.len()];
        let small = DiskRequest::new(0, RequestKind::Read, 0, sectors_small);
        let large = DiskRequest::new(1, RequestKind::Read, 0, sectors_small + extra);
        let ts = service_timing(&params, &small, 0, rpm);
        let tl = service_timing(&params, &large, 0, rpm);
        prop_assert!(tl.total() >= ts.total());
    }
}
