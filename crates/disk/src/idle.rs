//! Idle-period tracking.
//!
//! An *idle period* in the paper's sense is the wall-clock interval between
//! a disk becoming free of work (its queue empties and the last request
//! completes) and the arrival of the next request. The lengths of these
//! periods — not the power states the policy happens to choose during them —
//! are what Fig. 12(a)/(b) plot, so the tracker observes the request stream
//! rather than the power-state machine.

use simkit::stats::{BucketHistogram, DurationHistogram};
use simkit::{SimDuration, SimTime};

/// Records disk idle-period lengths into the paper's CDF buckets.
///
/// # Example
///
/// ```
/// use sdds_disk::IdleTracker;
/// use simkit::SimTime;
///
/// let mut t = IdleTracker::new();
/// t.work_finished(SimTime::from_micros(1_000));
/// t.work_arrived(SimTime::from_micros(61_000)); // 60 ms idle period
/// assert_eq!(t.histogram().total(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IdleTracker {
    histogram: BucketHistogram,
    time_histogram: DurationHistogram,
    idle_since: Option<SimTime>,
    total_idle: SimDuration,
    longest: SimDuration,
}

impl IdleTracker {
    /// Creates a tracker using the paper's Fig. 12 bucket edges.
    ///
    /// The disk starts idle at time zero.
    pub fn new() -> Self {
        IdleTracker {
            histogram: BucketHistogram::paper_idle_buckets(),
            time_histogram: DurationHistogram::paper_idle_buckets(),
            idle_since: Some(SimTime::ZERO),
            total_idle: SimDuration::ZERO,
            longest: SimDuration::ZERO,
        }
    }

    /// Notes that the disk ran out of work at `t` (queue empty, last request
    /// complete). Ignored if already idle.
    pub fn work_finished(&mut self, t: SimTime) {
        if self.idle_since.is_none() {
            self.idle_since = Some(t);
        }
    }

    /// Notes that work arrived at `t`, closing any open idle period.
    pub fn work_arrived(&mut self, t: SimTime) {
        if let Some(start) = self.idle_since.take() {
            let len = t.saturating_since(start);
            if !len.is_zero() {
                self.histogram.record(len);
                self.time_histogram.record(len);
                self.total_idle += len;
                self.longest = self.longest.max(len);
            }
        }
    }

    /// Closes the final idle period at end-of-simulation time `t`, if one is
    /// open.
    pub fn finish(&mut self, t: SimTime) {
        self.work_arrived(t);
    }

    /// Returns `true` if an idle period is currently open.
    pub fn is_idle(&self) -> bool {
        self.idle_since.is_some()
    }

    /// When the current idle period began, if any.
    pub fn idle_since(&self) -> Option<SimTime> {
        self.idle_since
    }

    /// The bucketed histogram of completed idle periods (period counts —
    /// the population Fig. 12 plots).
    pub fn histogram(&self) -> &BucketHistogram {
        &self.histogram
    }

    /// The time-weighted histogram: where the idle *time* lives, which is
    /// what determines the energy opportunity.
    pub fn time_histogram(&self) -> &DurationHistogram {
        &self.time_histogram
    }

    /// Sum of all completed idle-period lengths.
    pub fn total_idle(&self) -> SimDuration {
        self.total_idle
    }

    /// Longest completed idle period.
    pub fn longest(&self) -> SimDuration {
        self.longest
    }
}

impl Default for IdleTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn starts_idle_at_zero() {
        let mut tr = IdleTracker::new();
        assert!(tr.is_idle());
        tr.work_arrived(t(5_000));
        assert_eq!(tr.histogram().total(), 1);
        assert_eq!(tr.total_idle(), SimDuration::from_millis(5));
    }

    #[test]
    fn tracks_multiple_periods() {
        let mut tr = IdleTracker::new();
        tr.work_arrived(t(1_000));
        tr.work_finished(t(2_000));
        tr.work_arrived(t(52_000)); // 50 ms
        tr.work_finished(t(60_000));
        tr.finish(t(1_060_000)); // 1 s final period
        assert_eq!(tr.histogram().total(), 3);
        assert_eq!(tr.time_histogram().total(), tr.total_idle());
        // Time-weighted: the 1 s period dominates.
        assert!(
            tr.time_histogram()
                .share_at_or_below(SimDuration::from_millis(100))
                < 0.1
        );
        assert_eq!(tr.longest(), SimDuration::from_secs(1));
        assert_eq!(
            tr.total_idle(),
            SimDuration::from_micros(1_000 + 50_000 + 1_000_000)
        );
    }

    #[test]
    fn double_finish_is_idempotent() {
        let mut tr = IdleTracker::new();
        tr.work_finished(t(10));
        tr.work_finished(t(99)); // ignored; still idle since 0
        tr.work_arrived(t(100));
        assert_eq!(tr.total_idle(), SimDuration::from_micros(100));
    }

    #[test]
    fn back_to_back_arrivals_record_nothing_extra() {
        let mut tr = IdleTracker::new();
        tr.work_arrived(t(10));
        tr.work_arrived(t(20)); // no open period
        assert_eq!(tr.histogram().total(), 1);
    }

    #[test]
    fn zero_length_period_not_recorded() {
        let mut tr = IdleTracker::new();
        tr.work_arrived(t(0));
        assert_eq!(tr.histogram().total(), 0);
        assert!(!tr.is_idle());
    }
}
