//! Request service-time computation.
//!
//! Service time = controller overhead + seek + rotational latency +
//! media transfer + bus transfer, with the rotation-dependent terms scaled
//! by the current spindle speed: at lower RPM a rotation takes
//! proportionally longer, so both the expected rotational latency and the
//! media transfer rate degrade linearly — exactly the DRPM service model
//! the paper builds on.

use simkit::SimDuration;

use crate::params::{DiskParams, Rpm};
use crate::request::DiskRequest;

/// Timing breakdown of one request's service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceTiming {
    /// Controller/command overhead.
    pub overhead: SimDuration,
    /// Arm movement time.
    pub seek: SimDuration,
    /// Rotational latency (expected half rotation at the serving speed).
    pub rotation: SimDuration,
    /// Media transfer time at the serving speed.
    pub transfer: SimDuration,
    /// Extra bus time not overlapped with media transfer.
    pub bus: SimDuration,
}

impl ServiceTiming {
    /// Seek phase duration (attributed seek power).
    pub fn seek_phase(&self) -> SimDuration {
        self.seek
    }

    /// Transfer phase duration: everything that is not the seek (attributed
    /// active power).
    pub fn transfer_phase(&self) -> SimDuration {
        self.overhead + self.rotation + self.transfer + self.bus
    }

    /// Total service time.
    pub fn total(&self) -> SimDuration {
        self.seek_phase() + self.transfer_phase()
    }
}

/// Computes the service timing for `request` given the arm position and
/// spindle speed.
///
/// # Example
///
/// ```
/// use sdds_disk::service::service_timing;
/// use sdds_disk::{DiskParams, DiskRequest, RequestKind, Rpm};
///
/// let p = DiskParams::paper_defaults();
/// let req = DiskRequest::new(0, RequestKind::Read, 0, 128);
/// let full = service_timing(&p, &req, 0, Rpm::new(12_000));
/// let slow = service_timing(&p, &req, 0, Rpm::new(3_600));
/// assert!(slow.total() > full.total());
/// ```
pub fn service_timing(
    params: &DiskParams,
    request: &DiskRequest,
    arm_cylinder: u32,
    rpm: Rpm,
) -> ServiceTiming {
    let target = params.cylinder_of(request.lba);
    let distance = target.abs_diff(arm_cylinder);
    let seek = params.seek.seek_time(distance);

    let rotation = rpm.rotation_period() / 2;

    // Media rate: one track per rotation.
    let track_bytes = params.sectors_per_track as u64 * params.sector_bytes as u64;
    let bytes = request.bytes(params.sector_bytes);
    let rotations_needed = bytes as f64 / track_bytes as f64;
    let transfer =
        SimDuration::from_secs_f64(rotations_needed * rpm.rotation_period().as_secs_f64());

    // The bus is faster than the media; only the non-overlapped remainder
    // (if any) adds latency.
    let bus_time = SimDuration::from_secs_f64(bytes as f64 / params.bus_bytes_per_sec as f64);
    let bus = bus_time.saturating_sub(transfer);

    ServiceTiming {
        overhead: params.controller_overhead,
        seek,
        rotation,
        transfer,
        bus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    fn params() -> DiskParams {
        DiskParams::paper_defaults()
    }

    fn req(lba: u64, sectors: u32) -> DiskRequest {
        DiskRequest::new(0, RequestKind::Read, lba, sectors)
    }

    #[test]
    fn zero_distance_seek_is_free() {
        let p = params();
        let t = service_timing(&p, &req(0, 8), 0, p.max_rpm);
        assert_eq!(t.seek, SimDuration::ZERO);
        assert!(t.total() > SimDuration::ZERO);
    }

    #[test]
    fn longer_seeks_cost_more() {
        let p = params();
        let near = service_timing(&p, &req(0, 8), 10, p.max_rpm);
        let far_lba = p.total_sectors() - 100;
        let far = service_timing(&p, &req(far_lba, 8), 10, p.max_rpm);
        assert!(far.seek > near.seek);
    }

    #[test]
    fn rotational_latency_is_half_rotation() {
        let p = params();
        let t = service_timing(&p, &req(0, 1), 0, Rpm::new(12_000));
        assert_eq!(t.rotation.as_micros(), 2_500);
        let slow = service_timing(&p, &req(0, 1), 0, Rpm::new(6_000));
        assert_eq!(slow.rotation.as_micros(), 5_000);
    }

    #[test]
    fn transfer_scales_with_size_and_speed() {
        let p = params();
        let small = service_timing(&p, &req(0, 64), 0, p.max_rpm);
        let large = service_timing(&p, &req(0, 640), 0, p.max_rpm);
        assert!(large.transfer > small.transfer);
        // 10x the sectors => 10x the media time.
        let ratio = large.transfer.as_secs_f64() / small.transfer.as_secs_f64();
        assert!((ratio - 10.0).abs() < 0.01);

        let slow = service_timing(&p, &req(0, 640), 0, Rpm::new(6_000));
        let speed_ratio = slow.transfer.as_secs_f64() / large.transfer.as_secs_f64();
        assert!((speed_ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn full_speed_media_rate_sanity() {
        // 600 sectors/track * 512 B / 5 ms rotation ~= 61 MB/s.
        let p = params();
        let one_track = p.sectors_per_track;
        let t = service_timing(&p, &req(0, one_track), 0, p.max_rpm);
        assert_eq!(t.transfer.as_micros(), 5_000);
    }

    #[test]
    fn bus_never_negative_and_rarely_binds() {
        let p = params();
        // Media at 61 MB/s is slower than the 160 MB/s bus: no extra bus time.
        let t = service_timing(&p, &req(0, 1_000), 0, p.max_rpm);
        assert_eq!(t.bus, SimDuration::ZERO);
    }

    #[test]
    fn phases_sum_to_total() {
        let p = params();
        let t = service_timing(&p, &req(12_345, 256), 77, p.max_rpm);
        assert_eq!(t.seek_phase() + t.transfer_phase(), t.total());
    }

    #[test]
    fn overhead_always_charged() {
        let p = params();
        let t = service_timing(&p, &req(0, 1), 0, p.max_rpm);
        assert_eq!(t.overhead, p.controller_overhead);
    }
}
