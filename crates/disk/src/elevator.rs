//! Elevator (SCAN) disk-arm scheduling.
//!
//! Table II specifies "Elevator" disk-arm scheduling: the arm sweeps in one
//! direction serving the pending request with the nearest cylinder at or
//! beyond the current position, reversing direction only when no requests
//! remain ahead of it.

use simkit::SimTime;

use crate::request::DiskRequest;

/// The sweep direction of the arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

/// A pending request together with its arrival time and precomputed
/// cylinder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest {
    /// The queued request.
    pub request: DiskRequest,
    /// When it arrived at the disk.
    pub arrival: SimTime,
    /// Cylinder of the request's first sector.
    pub cylinder: u32,
}

/// A SCAN-ordered queue of pending disk requests.
///
/// # Example
///
/// ```
/// use sdds_disk::elevator::ElevatorQueue;
/// use sdds_disk::{DiskRequest, RequestKind};
/// use simkit::SimTime;
///
/// let mut q = ElevatorQueue::new();
/// q.push(DiskRequest::new(0, RequestKind::Read, 0, 1), SimTime::ZERO, 10);
/// q.push(DiskRequest::new(1, RequestKind::Read, 0, 1), SimTime::ZERO, 90);
/// // Arm at cylinder 50 sweeping up: cylinder 90 is served first.
/// let first = q.pop_next(50).unwrap();
/// assert_eq!(first.request.id.0, 1);
/// let second = q.pop_next(90).unwrap();
/// assert_eq!(second.request.id.0, 0);
/// ```
#[derive(Debug, Clone)]
pub struct ElevatorQueue {
    pending: Vec<PendingRequest>,
    direction: Direction,
}

impl ElevatorQueue {
    /// Creates an empty queue (initial sweep direction: up).
    pub fn new() -> Self {
        ElevatorQueue {
            pending: Vec::new(),
            direction: Direction::Up,
        }
    }

    /// Adds a request that arrived at `arrival`, located at `cylinder`.
    pub fn push(&mut self, request: DiskRequest, arrival: SimTime, cylinder: u32) {
        self.pending.push(PendingRequest {
            request,
            arrival,
            cylinder,
        });
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Iterates over the pending requests in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &PendingRequest> {
        self.pending.iter()
    }

    /// Removes and returns the next request according to SCAN order from
    /// `arm_cylinder`, or `None` when empty.
    ///
    /// Among requests on the same cylinder the earliest arrival wins, which
    /// keeps ordering deterministic.
    pub fn pop_next(&mut self, arm_cylinder: u32) -> Option<PendingRequest> {
        if self.pending.is_empty() {
            return None;
        }
        let idx = match self.direction {
            Direction::Up => self.best_up(arm_cylinder).or_else(|| {
                self.direction = Direction::Down;
                self.best_down(arm_cylinder)
            }),
            Direction::Down => self.best_down(arm_cylinder).or_else(|| {
                self.direction = Direction::Up;
                self.best_up(arm_cylinder)
            }),
        };
        idx.map(|i| self.pending.swap_remove(i))
    }

    /// Index of the nearest request at or above `cyl`.
    fn best_up(&self, cyl: u32) -> Option<usize> {
        self.pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cylinder >= cyl)
            .min_by_key(|(_, p)| (p.cylinder, p.arrival, p.request.id))
            .map(|(i, _)| i)
    }

    /// Index of the nearest request at or below `cyl`.
    fn best_down(&self, cyl: u32) -> Option<usize> {
        self.pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cylinder <= cyl)
            .max_by_key(|(_, p)| p.cylinder)
            .map(|(i, _)| {
                // Break cylinder ties by earliest arrival.
                let best_cyl = self.pending[i].cylinder;
                self.pending
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.cylinder == best_cyl)
                    .min_by_key(|(_, p)| (p.arrival, p.request.id))
                    .map(|(j, _)| j)
                    .unwrap_or(i)
            })
    }
}

impl Default for ElevatorQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    fn req(id: u64) -> DiskRequest {
        DiskRequest::new(id, RequestKind::Read, 0, 1)
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn sweeps_up_then_down() {
        let mut q = ElevatorQueue::new();
        q.push(req(0), t(0), 30);
        q.push(req(1), t(0), 70);
        q.push(req(2), t(0), 50);
        // Arm at 40 sweeping up: 50, then 70; reverse: 30.
        assert_eq!(q.pop_next(40).unwrap().cylinder, 50);
        assert_eq!(q.pop_next(50).unwrap().cylinder, 70);
        assert_eq!(q.pop_next(70).unwrap().cylinder, 30);
        assert!(q.pop_next(30).is_none());
    }

    #[test]
    fn reverses_and_reverses_again() {
        let mut q = ElevatorQueue::new();
        q.push(req(0), t(0), 10);
        assert_eq!(q.pop_next(90).unwrap().cylinder, 10); // forced reversal
        q.push(req(1), t(1), 80);
        // Direction is now Down; nothing below 10, so reverse to Up.
        assert_eq!(q.pop_next(10).unwrap().cylinder, 80);
    }

    #[test]
    fn same_cylinder_fifo() {
        let mut q = ElevatorQueue::new();
        q.push(req(5), t(20), 42);
        q.push(req(6), t(10), 42);
        assert_eq!(q.pop_next(0).unwrap().request.id.0, 6);
        assert_eq!(q.pop_next(42).unwrap().request.id.0, 5);
    }

    #[test]
    fn current_cylinder_counts_as_ahead() {
        let mut q = ElevatorQueue::new();
        q.push(req(0), t(0), 25);
        assert_eq!(q.pop_next(25).unwrap().cylinder, 25);
    }

    #[test]
    fn len_and_iter() {
        let mut q = ElevatorQueue::new();
        assert!(q.is_empty());
        q.push(req(0), t(0), 1);
        q.push(req(1), t(0), 2);
        assert_eq!(q.len(), 2);
        let ids: Vec<u64> = q.iter().map(|p| p.request.id.0).collect();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn serves_all_without_starvation() {
        let mut q = ElevatorQueue::new();
        for i in 0..50u64 {
            q.push(req(i), t(i), ((i * 37) % 100) as u32);
        }
        let mut arm = 0;
        let mut served = 0;
        while let Some(p) = q.pop_next(arm) {
            arm = p.cylinder;
            served += 1;
        }
        assert_eq!(served, 50);
    }
}
