//! Typed validation errors for disk configurations.

use crate::params::Rpm;
use std::fmt;

/// A violated [`DiskParams`](crate::DiskParams) constraint.
///
/// Each variant carries the offending field and value so callers can
/// render a precise diagnostic; [`fmt::Display`] produces the one-line
/// form used by the CLI.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DiskError {
    /// A geometry field (sector size, sectors per track, heads or
    /// cylinders) is zero.
    Geometry {
        /// Name of the zero-valued geometry field.
        field: &'static str,
    },
    /// The minimum speed exceeds the maximum speed.
    SpeedRange {
        /// Configured minimum speed.
        min: Rpm,
        /// Configured maximum speed.
        max: Rpm,
    },
    /// A multi-speed disk was configured with a zero RPM step.
    ZeroRpmStep,
    /// The speed range is not an exact multiple of the RPM step.
    SpeedStep {
        /// Configured minimum speed.
        min: Rpm,
        /// Configured maximum speed.
        max: Rpm,
        /// Configured step between adjacent levels.
        step: u32,
    },
    /// The bus bandwidth is zero.
    ZeroBusBandwidth,
    /// A power field is negative, NaN or infinite.
    Power {
        /// Name of the offending power field.
        field: &'static str,
        /// The rejected wattage.
        value: f64,
    },
    /// The electronics floor is at or above the idle power, leaving no
    /// spindle power for Eq. 1.
    ElectronicsFloor {
        /// Configured electronics power.
        electronics: f64,
        /// Configured idle power.
        idle: f64,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Geometry { field } => {
                write!(f, "disk geometry field `{field}` must be positive")
            }
            DiskError::SpeedRange { min, max } => {
                write!(f, "min_rpm ({min}) exceeds max_rpm ({max})")
            }
            DiskError::ZeroRpmStep => {
                write!(f, "rpm_step must be positive for a multi-speed disk")
            }
            DiskError::SpeedStep { min, max, step } => {
                write!(
                    f,
                    "speed range {min}..{max} is not a multiple of rpm_step {step}"
                )
            }
            DiskError::ZeroBusBandwidth => write!(f, "bus bandwidth must be positive"),
            DiskError::Power { field, value } => {
                write!(
                    f,
                    "`{field}` must be a non-negative finite wattage, got {value}"
                )
            }
            DiskError::ElectronicsFloor { electronics, idle } => {
                write!(
                    f,
                    "electronics_power ({electronics} W) must be below idle_power ({idle} W)"
                )
            }
        }
    }
}

impl std::error::Error for DiskError {}
