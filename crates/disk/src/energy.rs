//! Per-state energy accounting.

use std::collections::BTreeMap;

use simkit::SimDuration;

/// Accumulates energy (joules) and residency (time) per disk-state label.
///
/// # Example
///
/// ```
/// use sdds_disk::EnergyAccount;
/// use simkit::SimDuration;
///
/// let mut acct = EnergyAccount::new();
/// acct.accrue("idle", 17.1, SimDuration::from_secs(10));
/// assert!((acct.total_joules() - 171.0).abs() < 1e-9);
/// assert_eq!(acct.residency("idle"), SimDuration::from_secs(10));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyAccount {
    by_state: BTreeMap<&'static str, StateEnergy>,
}

/// Energy and residency of one state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateEnergy {
    /// Joules consumed while in this state.
    pub joules: f64,
    /// Total time spent in this state.
    pub residency: SimDuration,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `duration` at `watts` to the bucket for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or not finite.
    pub fn accrue(&mut self, state: &'static str, watts: f64, duration: SimDuration) {
        assert!(
            watts.is_finite() && watts >= 0.0,
            "power must be non-negative and finite, got {watts}"
        );
        if duration.is_zero() {
            return;
        }
        let entry = self.by_state.entry(state).or_default();
        entry.joules += watts * duration.as_secs_f64();
        entry.residency += duration;
    }

    /// Total energy across all states, in joules.
    pub fn total_joules(&self) -> f64 {
        self.by_state.values().map(|s| s.joules).sum()
    }

    /// Total accounted time across all states.
    pub fn total_time(&self) -> SimDuration {
        self.by_state.values().map(|s| s.residency).sum()
    }

    /// Energy for one state label, in joules (zero if never visited).
    pub fn joules(&self, state: &str) -> f64 {
        self.by_state.get(state).map_or(0.0, |s| s.joules)
    }

    /// Residency for one state label (zero if never visited).
    pub fn residency(&self, state: &str) -> SimDuration {
        self.by_state
            .get(state)
            .map_or(SimDuration::ZERO, |s| s.residency)
    }

    /// Iterates `(state, energy)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &StateEnergy)> {
        self.by_state.iter().map(|(k, v)| (*k, v))
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (state, e) in &other.by_state {
            let entry = self.by_state.entry(state).or_default();
            entry.joules += e.joules;
            entry.residency += e.residency;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accrue_and_query() {
        let mut a = EnergyAccount::new();
        a.accrue("idle", 10.0, SimDuration::from_secs(2));
        a.accrue("seek", 30.0, SimDuration::from_millis(500));
        a.accrue("idle", 10.0, SimDuration::from_secs(1));
        assert!((a.joules("idle") - 30.0).abs() < 1e-9);
        assert!((a.joules("seek") - 15.0).abs() < 1e-9);
        assert_eq!(a.joules("standby"), 0.0);
        assert!((a.total_joules() - 45.0).abs() < 1e-9);
        assert_eq!(a.residency("idle"), SimDuration::from_secs(3));
        assert_eq!(a.total_time(), SimDuration::from_micros(3_500_000));
    }

    #[test]
    fn zero_duration_is_noop() {
        let mut a = EnergyAccount::new();
        a.accrue("idle", 100.0, SimDuration::ZERO);
        assert_eq!(a.total_joules(), 0.0);
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyAccount::new();
        a.accrue("idle", 10.0, SimDuration::from_secs(1));
        let mut b = EnergyAccount::new();
        b.accrue("idle", 10.0, SimDuration::from_secs(2));
        b.accrue("standby", 5.0, SimDuration::from_secs(4));
        a.merge(&b);
        assert!((a.joules("idle") - 30.0).abs() < 1e-9);
        assert!((a.joules("standby") - 20.0).abs() < 1e-9);
    }

    #[test]
    fn energy_equals_power_times_residency_per_state() {
        // Invariant the property tests also exercise at the Disk level.
        let mut a = EnergyAccount::new();
        a.accrue("transfer", 36.6, SimDuration::from_millis(1_234));
        let e = a.joules("transfer");
        let t = a.residency("transfer").as_secs_f64();
        assert!((e - 36.6 * t).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_watts_panics() {
        EnergyAccount::new().accrue("idle", -1.0, SimDuration::from_secs(1));
    }

    #[test]
    fn iter_sorted() {
        let mut a = EnergyAccount::new();
        a.accrue("z", 1.0, SimDuration::from_secs(1));
        a.accrue("a", 1.0, SimDuration::from_secs(1));
        let keys: Vec<_> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
