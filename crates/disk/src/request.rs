//! Disk request types.

use simkit::SimTime;

/// Identifier correlating a submitted request with its completion record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Whether a request reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Data flows from the platter to the host.
    Read,
    /// Data flows from the host to the platter.
    Write,
}

impl RequestKind {
    /// Returns `true` for reads.
    pub fn is_read(self) -> bool {
        matches!(self, RequestKind::Read)
    }
}

/// A block-level request addressed to one disk.
///
/// # Example
///
/// ```
/// use sdds_disk::{DiskRequest, RequestKind};
///
/// let r = DiskRequest::new(1, RequestKind::Read, 4_096, 128);
/// assert_eq!(r.sectors, 128);
/// assert!(r.kind.is_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Correlation id chosen by the submitter.
    pub id: RequestId,
    /// Read or write.
    pub kind: RequestKind,
    /// Starting logical block address (sector number).
    pub lba: u64,
    /// Number of contiguous sectors.
    pub sectors: u32,
}

impl DiskRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is zero.
    pub fn new(id: u64, kind: RequestKind, lba: u64, sectors: u32) -> Self {
        assert!(sectors > 0, "a disk request must cover at least one sector");
        DiskRequest {
            id: RequestId(id),
            kind,
            lba,
            sectors,
        }
    }

    /// Total bytes moved by this request given a sector size.
    pub fn bytes(&self, sector_bytes: u32) -> u64 {
        self.sectors as u64 * sector_bytes as u64
    }
}

/// How a request's service attempt ended.
///
/// With no fault model installed every completion is
/// [`ServiceOutcome::Ok`]; the fault model can fail *reads* (writes
/// always land — the simulated array models read-path faults). A failed
/// attempt still consumed the full mechanical service time and energy:
/// the platters spun and the arm moved, the data just did not survive
/// the trip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ServiceOutcome {
    /// The data moved successfully.
    #[default]
    Ok,
    /// A retryable read error (ECC hiccup, vibration): the same sectors
    /// may well succeed on a later attempt.
    TransientError,
    /// The read overlapped an unremapped bad sector; it fails
    /// deterministically until the range is remapped.
    BadSector,
}

impl ServiceOutcome {
    /// Returns `true` when the attempt succeeded.
    pub fn is_ok(self) -> bool {
        matches!(self, ServiceOutcome::Ok)
    }
}

/// A request that has finished service, with its timing breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// The original request.
    pub request: DiskRequest,
    /// When the request arrived at the disk.
    pub arrival: SimTime,
    /// When service (seek) began.
    pub service_start: SimTime,
    /// When the last byte moved.
    pub completion: SimTime,
    /// How the attempt ended (always [`ServiceOutcome::Ok`] without a
    /// fault model).
    pub outcome: ServiceOutcome,
}

impl CompletedRequest {
    /// Total time from arrival to completion (queueing + service).
    pub fn response_time(&self) -> simkit::SimDuration {
        self.completion - self.arrival
    }

    /// Time spent waiting before service started.
    pub fn queue_delay(&self) -> simkit::SimDuration {
        self.service_start - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_computation() {
        let r = DiskRequest::new(0, RequestKind::Write, 0, 8);
        assert_eq!(r.bytes(512), 4_096);
    }

    #[test]
    #[should_panic(expected = "at least one sector")]
    fn zero_sectors_panics() {
        let _ = DiskRequest::new(0, RequestKind::Read, 0, 0);
    }

    #[test]
    fn completion_timing() {
        let c = CompletedRequest {
            request: DiskRequest::new(7, RequestKind::Read, 10, 1),
            arrival: SimTime::from_micros(100),
            service_start: SimTime::from_micros(150),
            completion: SimTime::from_micros(400),
            outcome: ServiceOutcome::Ok,
        };
        assert_eq!(c.response_time().as_micros(), 300);
        assert_eq!(c.queue_delay().as_micros(), 50);
        assert!(c.outcome.is_ok());
        assert!(!ServiceOutcome::TransientError.is_ok());
        assert!(!ServiceOutcome::BadSector.is_ok());
        assert_eq!(ServiceOutcome::default(), ServiceOutcome::Ok);
    }
}
