//! The simulated disk: request service, power-state machine, energy
//! integration.

use simkit::fault::{DiskFaultProfile, FaultCounters};
use simkit::stats::OnlineStats;
use simkit::telemetry::{TraceEvent, TraceSink};
#[cfg(test)]
use simkit::SimDuration;
use simkit::{DetRng, SimTime};

use crate::elevator::{ElevatorQueue, PendingRequest};
use crate::energy::EnergyAccount;
use crate::idle::IdleTracker;
use crate::params::{DiskParams, Rpm};
use crate::power::SpindlePowerModel;
pub use crate::request::CompletedRequest;
use crate::request::{DiskRequest, ServiceOutcome};
use crate::service::service_timing;
use crate::state::DiskState;

/// When a requested speed change should take effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpmChangePriority {
    /// Apply only once the disk has no queued work (opportunistic
    /// slow-down).
    WhenIdle,
    /// Apply before serving the next queued request (urgent ramp-up; queued
    /// requests wait for the transition).
    Immediate,
}

/// A pending speed-change directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingRpm {
    target: Rpm,
    priority: RpmChangePriority,
}

/// The request currently in service.
#[derive(Debug, Clone, Copy)]
struct InService {
    pending: PendingRequest,
    service_start: SimTime,
    completion: SimTime,
    target_cylinder: u32,
    /// Whole-disk energy total at service start, so the completion event
    /// can carry the exact energy metered over the service window.
    energy_at_start: f64,
}

/// Tracing context: where this disk sits in the array topology, plus the
/// event buffer it records into while telemetry is enabled.
#[derive(Debug)]
struct TraceCtx {
    node: u32,
    disk: u32,
    sink: TraceSink,
}

/// The installed disk-level fault model: the static profile expanded
/// into mutable state (the bad-sector set shrinks as the storage layer
/// remaps ranges) plus this disk's private transient-draw stream.
///
/// Crash windows are *not* represented here — a crashed disk is
/// unreachable, which is a property of the I/O path, so the storage
/// layer enforces them at submission time while the disk's power state
/// machine (and therefore its energy accounting) runs on unchanged.
#[derive(Debug)]
struct DiskFaultState {
    /// Unremapped bad sectors, sorted ascending.
    bad_sectors: Vec<u64>,
    /// Mechanical service-time multiplier (`> 1` for stragglers).
    slow_factor: f64,
    /// Per-read transient error probability.
    transient_rate: f64,
    /// Private draw stream, seeded from the fault plan.
    rng: DetRng,
    injected_transient: u64,
    injected_bad_sector: u64,
}

impl DiskFaultState {
    /// Returns `true` when `[lba, lba + sectors)` touches an unremapped
    /// bad sector.
    fn overlaps_bad(&self, lba: u64, sectors: u32) -> bool {
        let end = lba + sectors as u64;
        let i = self.bad_sectors.partition_point(|&s| s < lba);
        self.bad_sectors.get(i).is_some_and(|&s| s < end)
    }

    /// Decides how a completing read attempt ends. Bad sectors fail
    /// deterministically; otherwise the transient coin is flipped on the
    /// disk's private stream (one draw per completed read, in
    /// completion order, so the sequence is reproducible).
    fn read_outcome(&mut self, request: &DiskRequest) -> ServiceOutcome {
        if self.overlaps_bad(request.lba, request.sectors) {
            self.injected_bad_sector += 1;
            return ServiceOutcome::BadSector;
        }
        if self.transient_rate > 0.0 && self.rng.chance(self.transient_rate) {
            self.injected_transient += 1;
            return ServiceOutcome::TransientError;
        }
        ServiceOutcome::Ok
    }
}

/// Lifetime counters of power-relevant events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCounters {
    /// Spin-down transitions begun.
    pub spin_downs: u64,
    /// Spin-up transitions begun.
    pub spin_ups: u64,
    /// Speed changes begun (excluding spin-up/down).
    pub rpm_changes: u64,
    /// Requests fully served.
    pub requests_served: u64,
}

/// A single simulated multi-speed disk.
///
/// The disk is driven by two kinds of calls: [`Disk::submit`] hands it a
/// request at a given time, and [`Disk::advance_to`] lets simulated time
/// progress (processing service completions and state transitions, and
/// integrating energy). Power-management policies additionally invoke the
/// control operations [`Disk::start_spin_down`], [`Disk::start_spin_up`] and
/// [`Disk::request_rpm_change`].
///
/// Requests arriving while the platters are stopped or in transition
/// automatically trigger (or wait for) a spin-up — the disk always makes
/// forward progress without policy help.
#[derive(Debug)]
pub struct Disk {
    params: DiskParams,
    power: SpindlePowerModel,
    now: SimTime,
    state: DiskState,
    /// End time of the current timed phase (service phase or transition).
    phase_end: Option<SimTime>,
    current: Option<InService>,
    queue: ElevatorQueue,
    arm_cylinder: u32,
    /// Requests submitted but not yet completed (queued + in service).
    outstanding: usize,
    pending_rpm: Option<PendingRpm>,
    /// A request arrived while spinning down; spin up as soon as standby is
    /// reached.
    spin_up_after_down: bool,
    energy: EnergyAccount,
    idle: IdleTracker,
    completions: Vec<CompletedRequest>,
    response_times: OnlineStats,
    counters: DiskCounters,
    /// Times `advance_to` was invoked (perf introspection: an idle disk in
    /// a large array should *not* be advanced once per array event).
    advance_calls: u64,
    /// Telemetry buffer; `None` (the default) keeps tracing entirely off
    /// the hot path.
    trace: Option<TraceCtx>,
    /// Fault model; `None` (the default) keeps the service path free of
    /// fault branches and RNG draws — bit-for-bit the fault-free disk.
    faults: Option<DiskFaultState>,
}

impl Disk {
    /// Creates a disk at time zero, idle at full speed.
    ///
    /// # Errors
    ///
    /// Returns the [`DiskError`] produced by [`DiskParams::validate`] if
    /// the configuration is inconsistent.
    pub fn new(params: DiskParams) -> Result<Self, crate::DiskError> {
        let power = SpindlePowerModel::new(&params)?;
        let max_rpm = params.max_rpm;
        Ok(Disk {
            params,
            power,
            now: SimTime::ZERO,
            state: DiskState::Idle { rpm: max_rpm },
            phase_end: None,
            current: None,
            queue: ElevatorQueue::new(),
            arm_cylinder: 0,
            outstanding: 0,
            pending_rpm: None,
            spin_up_after_down: false,
            energy: EnergyAccount::new(),
            idle: IdleTracker::new(),
            completions: Vec::new(),
            response_times: OnlineStats::new(),
            counters: DiskCounters::default(),
            advance_calls: 0,
            trace: None,
            faults: None,
        })
    }

    /// Installs the disk-level portion of a fault profile: bad sectors,
    /// straggler slowdown and transient read errors. Crash windows are
    /// enforced by the storage layer (see [`DiskFaultState`] on why) and
    /// ignored here. Installing a profile with none of the disk-level
    /// faults active is a no-op, so fault-free disks carry no state.
    pub fn install_faults(&mut self, profile: &DiskFaultProfile) {
        if profile.bad_sectors.is_empty()
            && profile.slow_factor <= 1.0
            && profile.transient_rate <= 0.0
        {
            return;
        }
        self.faults = Some(DiskFaultState {
            bad_sectors: profile.bad_sectors.clone(),
            slow_factor: profile.slow_factor,
            transient_rate: profile.transient_rate,
            rng: DetRng::new(profile.rng_seed),
            injected_transient: 0,
            injected_bad_sector: 0,
        });
    }

    /// Remaps every bad sector overlapping `[lba, lba + sectors)` to a
    /// healthy reserve, so subsequent reads of the range stop failing.
    /// Returns the number of sectors remapped (zero without a fault
    /// model or when none overlapped).
    pub fn remap_sectors(&mut self, lba: u64, sectors: u32) -> u32 {
        let Some(f) = self.faults.as_mut() else {
            return 0;
        };
        let end = lba + sectors as u64;
        let before = f.bad_sectors.len();
        f.bad_sectors.retain(|&s| s < lba || s >= end);
        (before - f.bad_sectors.len()) as u32
    }

    /// Disk-level fault-injection counters (all zero without a fault
    /// model). Only the `injected_*` fields are populated here; recovery
    /// counters belong to the storage layer.
    pub fn fault_counters(&self) -> FaultCounters {
        match self.faults.as_ref() {
            Some(f) => FaultCounters {
                injected_transient: f.injected_transient,
                injected_bad_sector: f.injected_bad_sector,
                ..FaultCounters::default()
            },
            None => FaultCounters::default(),
        }
    }

    /// Enables structured tracing, tagging every recorded event with the
    /// disk's position (`node`, `disk`) in the array topology.
    ///
    /// Tracing only buffers events; it never changes the simulation
    /// (state transitions, timing and energy are bit-for-bit identical
    /// with tracing on or off).
    pub fn enable_trace(&mut self, node: u32, disk: u32) {
        self.trace = Some(TraceCtx {
            node,
            disk,
            sink: TraceSink::new(),
        });
    }

    /// Removes and returns all trace events recorded so far (empty when
    /// tracing was never enabled).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        match self.trace.as_mut() {
            Some(tr) => tr.sink.take_events(),
            None => Vec::new(),
        }
    }

    /// The disk's configuration.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Current simulated time of this disk.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current power state.
    pub fn state(&self) -> DiskState {
        self.state
    }

    /// The current rotational speed, if the platters are at a stable speed.
    pub fn current_rpm(&self) -> Option<Rpm> {
        self.state.rpm()
    }

    /// Number of requests submitted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Number of requests waiting in the queue (excludes the one in
    /// service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Accumulated energy account.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// Idle-period statistics.
    pub fn idle_tracker(&self) -> &IdleTracker {
        &self.idle
    }

    /// Event counters.
    pub fn counters(&self) -> DiskCounters {
        self.counters
    }

    /// Response-time summary over all served requests.
    pub fn response_times(&self) -> &OnlineStats {
        &self.response_times
    }

    /// The next instant at which the disk's state will change on its own
    /// (service phase boundary or transition end), if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.phase_end
    }

    /// Removes and returns all completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.completions)
    }

    /// Feeds every recorded completion to `sink` in completion order and
    /// clears them, retaining the buffer's capacity — the zero-allocation
    /// variant of [`Disk::drain_completions`] used on the simulation hot
    /// path.
    pub fn for_each_completion(&mut self, mut sink: impl FnMut(CompletedRequest)) {
        for c in self.completions.drain(..) {
            sink(c);
        }
    }

    /// Publishes this disk's statistics into `registry` under `prefix`
    /// (e.g. `disk.n0.d2`): per-state energy and residency, the
    /// power-event counters and the response-time summary. Pull-style:
    /// reads the statistics the disk already keeps, so it can run with
    /// tracing disabled.
    pub fn record_metrics(&self, registry: &mut simkit::telemetry::MetricsRegistry, prefix: &str) {
        registry.counter(&format!("{prefix}.spin_downs"), self.counters.spin_downs);
        registry.counter(&format!("{prefix}.spin_ups"), self.counters.spin_ups);
        registry.counter(&format!("{prefix}.rpm_changes"), self.counters.rpm_changes);
        registry.counter(
            &format!("{prefix}.requests_served"),
            self.counters.requests_served,
        );
        for (state, e) in self.energy.iter() {
            registry.gauge(&format!("{prefix}.energy_joules.{state}"), e.joules);
            registry.gauge(
                &format!("{prefix}.residency_s.{state}"),
                e.residency.as_secs_f64(),
            );
        }
        registry.gauge(
            &format!("{prefix}.energy_joules.total"),
            self.energy.total_joules(),
        );
        registry.summary(&format!("{prefix}.response_time_s"), &self.response_times);
    }

    /// How many times [`Disk::advance_to`] has been called on this disk
    /// (directly or via `submit`/control operations). Perf introspection:
    /// event dispatch must not advance disks that have nothing to do.
    pub fn advance_calls(&self) -> u64 {
        self.advance_calls
    }

    /// Advances simulated time to `t`, processing completions and
    /// transitions and integrating energy.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the disk's current time.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "disk time cannot move backwards ({} -> {})",
            self.now,
            t
        );
        self.advance_calls += 1;
        loop {
            match self.phase_end {
                Some(end) if end <= t => {
                    self.accrue_until(end);
                    self.on_phase_end();
                }
                _ => {
                    self.accrue_until(t);
                    break;
                }
            }
        }
    }

    /// Submits a request at time `t` (advancing the disk to `t` first).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the disk's current time.
    pub fn submit(&mut self, request: DiskRequest, t: SimTime) {
        self.advance_to(t);
        if self.outstanding == 0 {
            self.idle.work_arrived(t);
        }
        self.outstanding += 1;
        let cylinder = self.params.cylinder_of(request.lba);
        self.queue.push(request, t, cylinder);
        match self.state {
            DiskState::Idle { .. } => self.try_start_next(),
            DiskState::Standby => {
                self.begin_spin_up();
            }
            DiskState::SpinningDown => {
                self.spin_up_after_down = true;
            }
            // Seeking/Transferring/SpinningUp/ChangingSpeed: the request
            // waits; on_phase_end will pick it up.
            _ => {}
        }
    }

    /// Requests a transition to the spun-down (standby) state.
    ///
    /// Accepted only when the disk is idle with no queued work; returns
    /// `true` if the transition began.
    pub fn start_spin_down(&mut self, t: SimTime) -> bool {
        self.advance_to(t);
        if !matches!(self.state, DiskState::Idle { .. }) || self.outstanding > 0 {
            return false;
        }
        self.set_state(DiskState::SpinningDown);
        self.phase_end = Some(self.now + self.params.spin_down_time);
        self.counters.spin_downs += 1;
        true
    }

    /// Requests a spin-up from standby (used by predictive policies to hide
    /// the spin-up latency). Returns `true` if a spin-up began or was
    /// scheduled to follow an in-progress spin-down.
    pub fn start_spin_up(&mut self, t: SimTime) -> bool {
        self.advance_to(t);
        match self.state {
            DiskState::Standby => {
                self.begin_spin_up();
                true
            }
            DiskState::SpinningDown => {
                self.spin_up_after_down = true;
                true
            }
            _ => false,
        }
    }

    /// Requests a change of rotational speed.
    ///
    /// When the disk is idle with no work the change starts immediately;
    /// otherwise it is remembered and applied according to `priority`.
    /// A later request supersedes an earlier pending one. Returns `true`
    /// if the change started immediately.
    ///
    /// # Panics
    ///
    /// Panics if `target` is outside the disk's supported speed levels.
    pub fn request_rpm_change(
        &mut self,
        t: SimTime,
        target: Rpm,
        priority: RpmChangePriority,
    ) -> bool {
        assert!(
            self.params.rpm_levels().contains(&target),
            "{target} is not a supported speed level"
        );
        self.advance_to(t);
        match self.state {
            DiskState::Idle { rpm } if self.outstanding == 0 => {
                if rpm == target {
                    self.pending_rpm = None;
                    return false;
                }
                self.begin_speed_change(rpm, target);
                true
            }
            DiskState::Idle { rpm } if priority == RpmChangePriority::Immediate => {
                // Queued work exists (e.g. submitted at this same instant);
                // ramp first, then serve.
                if rpm == target {
                    self.pending_rpm = None;
                    return false;
                }
                self.begin_speed_change(rpm, target);
                true
            }
            DiskState::Standby | DiskState::SpinningDown | DiskState::SpinningUp => {
                // Speed changes are meaningless while stopped or spinning
                // up (spin-up always ends at full speed).
                false
            }
            _ => {
                self.pending_rpm = Some(PendingRpm { target, priority });
                false
            }
        }
    }

    /// Finishes the simulation at `t`: advances time and closes the final
    /// idle period.
    pub fn finish(&mut self, t: SimTime) {
        self.advance_to(t);
        if self.outstanding == 0 {
            self.idle.finish(t);
        }
    }

    // --- internals ---

    /// Integrates energy in the current state from `self.now` to `t`.
    fn accrue_until(&mut self, t: SimTime) {
        if t > self.now {
            let dur = t - self.now;
            self.energy
                .accrue(self.state.label(), self.power.watts(&self.state), dur);
            self.now = t;
        }
    }

    /// Moves the state machine to `next`, recording the transition when
    /// tracing is enabled. Every state change after construction goes
    /// through here.
    fn set_state(&mut self, next: DiskState) {
        if let Some(tr) = self.trace.as_mut() {
            tr.sink.record(TraceEvent::DiskState {
                at: self.now,
                node: tr.node,
                disk: tr.disk,
                from: self.state.label(),
                to: next.label(),
                rpm: next.rpm().map(Rpm::get).unwrap_or(0),
            });
        }
        self.state = next;
    }

    /// Handles the end of the current timed phase at `self.now`.
    fn on_phase_end(&mut self) {
        self.phase_end = None;
        match self.state {
            DiskState::Seeking { rpm } => {
                let Some(svc) = self.current.as_ref() else {
                    debug_assert!(false, "seeking without a request in service");
                    self.set_state(DiskState::Idle { rpm });
                    return;
                };
                let completion = svc.completion;
                self.set_state(DiskState::Transferring { rpm });
                self.phase_end = Some(completion);
            }
            DiskState::Transferring { rpm } => {
                let Some(svc) = self.current.take() else {
                    debug_assert!(false, "transferring without a request in service");
                    self.set_state(DiskState::Idle { rpm });
                    return;
                };
                self.arm_cylinder = svc.target_cylinder;
                // Fault decision at completion time: the attempt consumed
                // its full mechanical service (and energy) either way.
                let outcome = match self.faults.as_mut() {
                    Some(f) if svc.pending.request.kind.is_read() => {
                        f.read_outcome(&svc.pending.request)
                    }
                    _ => ServiceOutcome::Ok,
                };
                let completed = CompletedRequest {
                    request: svc.pending.request,
                    arrival: svc.pending.arrival,
                    service_start: svc.service_start,
                    completion: self.now,
                    outcome,
                };
                if let Some(tr) = self.trace.as_mut() {
                    // Energy has been accrued up to `self.now` (the
                    // completion instant), so the delta over the service
                    // window is exact; nanojoule rounding keeps the event
                    // integral and order-independent to serialize.
                    let delta = self.energy.total_joules() - svc.energy_at_start;
                    tr.sink.record(TraceEvent::Request {
                        node: tr.node,
                        disk: tr.disk,
                        id: completed.request.id.0,
                        arrival: completed.arrival,
                        start: completed.service_start,
                        end: completed.completion,
                        energy_nj: (delta * 1e9).round() as u64,
                    });
                    if !outcome.is_ok() {
                        tr.sink.record(TraceEvent::FaultInjected {
                            at: self.now,
                            node: tr.node,
                            disk: tr.disk,
                            id: completed.request.id.0,
                            kind: match outcome {
                                ServiceOutcome::TransientError => "transient",
                                _ => "bad-sector",
                            },
                        });
                    }
                }
                self.response_times
                    .push(completed.response_time().as_secs_f64());
                self.completions.push(completed);
                self.counters.requests_served += 1;
                self.outstanding -= 1;
                self.set_state(DiskState::Idle { rpm });
                if self.queue.is_empty() {
                    if self.outstanding == 0 {
                        self.idle.work_finished(self.now);
                    }
                    if let Some(p) = self.pending_rpm.take() {
                        if p.target != rpm {
                            self.begin_speed_change(rpm, p.target);
                        }
                    }
                } else {
                    self.try_start_next();
                }
            }
            DiskState::SpinningDown => {
                self.set_state(DiskState::Standby);
                if self.spin_up_after_down || !self.queue.is_empty() {
                    self.spin_up_after_down = false;
                    self.begin_spin_up();
                }
            }
            DiskState::SpinningUp => {
                self.set_state(DiskState::Idle {
                    rpm: self.params.max_rpm,
                });
                self.pending_rpm = None; // spin-up lands at full speed
                self.try_start_next();
            }
            DiskState::ChangingSpeed { to, .. } => {
                self.set_state(DiskState::Idle { rpm: to });
                self.try_start_next();
            }
            DiskState::Idle { .. } | DiskState::Standby => {
                unreachable!("no timed phase ends in state {:?}", self.state)
            }
        }
    }

    /// Starts serving the next queued request, honoring an `Immediate`
    /// pending speed change first. No-op if the queue is empty or the disk
    /// cannot serve.
    fn try_start_next(&mut self) {
        let DiskState::Idle { rpm } = self.state else {
            return;
        };
        if self.queue.is_empty() {
            return;
        }
        if let Some(p) = self.pending_rpm {
            if p.priority == RpmChangePriority::Immediate && p.target != rpm {
                self.pending_rpm = None;
                self.begin_speed_change(rpm, p.target);
                return;
            }
        }
        let Some(pending) = self.queue.pop_next(self.arm_cylinder) else {
            debug_assert!(false, "queue checked non-empty");
            return;
        };
        let timing = service_timing(&self.params, &pending.request, self.arm_cylinder, rpm);
        let service_start = self.now;
        // A straggler's mechanics run uniformly slower: both phases are
        // stretched by the profile's multiplier (fault-free disks take
        // the untouched durations, keeping timing bit-for-bit identical).
        let (seek_dur, transfer_dur) = match self.faults.as_ref() {
            Some(f) if f.slow_factor > 1.0 => (
                timing.seek_phase().mul_f64(f.slow_factor),
                timing.transfer_phase().mul_f64(f.slow_factor),
            ),
            _ => (timing.seek_phase(), timing.transfer_phase()),
        };
        let seek_end = service_start + seek_dur;
        let completion = seek_end + transfer_dur;
        self.current = Some(InService {
            pending,
            service_start,
            completion,
            target_cylinder: self.params.cylinder_of(pending.request.lba),
            energy_at_start: self.energy.total_joules(),
        });
        self.set_state(DiskState::Seeking { rpm });
        self.phase_end = Some(seek_end);
    }

    fn begin_spin_up(&mut self) {
        debug_assert_eq!(self.state, DiskState::Standby);
        self.set_state(DiskState::SpinningUp);
        self.phase_end = Some(self.now + self.params.spin_up_time);
        self.counters.spin_ups += 1;
    }

    fn begin_speed_change(&mut self, from: Rpm, to: Rpm) {
        debug_assert!(matches!(self.state, DiskState::Idle { .. }));
        self.set_state(DiskState::ChangingSpeed { from, to });
        self.phase_end = Some(self.now + self.params.rpm_change_time(from, to));
        self.counters.rpm_changes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{DiskRequest, RequestKind};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn read(id: u64, lba: u64, sectors: u32) -> DiskRequest {
        DiskRequest::new(id, RequestKind::Read, lba, sectors)
    }

    fn disk() -> Disk {
        Disk::new(DiskParams::paper_defaults()).unwrap()
    }

    #[test]
    fn serves_a_single_request() {
        let mut d = disk();
        d.submit(read(1, 0, 128), t(1_000));
        d.advance_to(t(10_000_000));
        let done = d.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request.id.0, 1);
        assert!(done[0].completion > done[0].arrival);
        assert_eq!(d.counters().requests_served, 1);
        assert_eq!(d.outstanding(), 0);
        assert!(matches!(d.state(), DiskState::Idle { .. }));
    }

    #[test]
    fn queues_requests_while_busy() {
        let mut d = disk();
        d.submit(read(1, 0, 600), t(0));
        d.submit(read(2, 1_000_000, 600), t(10));
        assert_eq!(d.outstanding(), 2);
        d.advance_to(t(60_000_000));
        let done = d.drain_completions();
        assert_eq!(done.len(), 2);
        // Second request waited for the first.
        assert!(done[1].service_start >= done[0].completion);
    }

    #[test]
    fn energy_accrues_while_idle() {
        let mut d = disk();
        d.advance_to(t(1_000_000));
        let e = d.energy().total_joules();
        assert!((e - 17.1).abs() < 1e-6, "expected ~17.1 J, got {e}");
    }

    #[test]
    fn spin_down_then_request_spins_up() {
        let mut d = disk();
        assert!(d.start_spin_down(t(0)));
        assert_eq!(d.state(), DiskState::SpinningDown);
        // After 10 s the disk reaches standby.
        d.advance_to(t(11_000_000));
        assert_eq!(d.state(), DiskState::Standby);
        // A request forces a 16 s spin-up before service.
        d.submit(read(1, 0, 8), t(12_000_000));
        assert_eq!(d.state(), DiskState::SpinningUp);
        d.advance_to(t(40_000_000));
        let done = d.drain_completions();
        assert_eq!(done.len(), 1);
        // Response time dominated by the spin-up.
        assert!(done[0].response_time() >= SimDuration::from_secs(16));
        assert_eq!(d.counters().spin_ups, 1);
        assert_eq!(d.counters().spin_downs, 1);
    }

    #[test]
    fn request_during_spin_down_waits_for_down_then_up() {
        let mut d = disk();
        assert!(d.start_spin_down(t(0)));
        d.submit(read(1, 0, 8), t(5_000_000)); // mid spin-down
        assert_eq!(d.state(), DiskState::SpinningDown);
        d.advance_to(t(10_000_000));
        assert_eq!(d.state(), DiskState::SpinningUp);
        d.advance_to(t(27_000_000));
        assert_eq!(d.drain_completions().len(), 1);
    }

    #[test]
    fn spin_down_rejected_when_busy() {
        let mut d = disk();
        d.submit(read(1, 0, 600), t(0));
        assert!(!d.start_spin_down(t(10)));
    }

    #[test]
    fn standby_power_lower_than_idle() {
        let mut d = disk();
        d.start_spin_down(t(0));
        d.advance_to(t(10_000_000)); // reach standby
        d.advance_to(t(110_000_000)); // 100 s in standby
        let standby_j = d.energy().joules("standby");
        assert!((standby_j - 7.2 * 100.0).abs() < 1e-6);
    }

    #[test]
    fn rpm_change_when_idle_is_immediate() {
        let mut d = disk();
        let low = Rpm::new(3_600);
        assert!(d.request_rpm_change(t(0), low, RpmChangePriority::WhenIdle));
        assert!(matches!(d.state(), DiskState::ChangingSpeed { .. }));
        // 7 steps at the configured per-step time.
        let ramp = d
            .params()
            .rpm_change_time(Rpm::new(12_000), Rpm::new(3_600));
        d.advance_to(SimTime::ZERO + ramp);
        assert_eq!(d.state(), DiskState::Idle { rpm: low });
        assert_eq!(d.counters().rpm_changes, 1);
    }

    #[test]
    fn serves_at_low_speed_more_slowly() {
        let mut fast = disk();
        fast.submit(read(1, 0, 600), t(0));
        fast.advance_to(t(60_000_000));
        let fast_done = fast.drain_completions()[0];

        let mut slow = disk();
        slow.request_rpm_change(t(0), Rpm::new(3_600), RpmChangePriority::WhenIdle);
        slow.advance_to(t(10_000_000)); // transition complete
        slow.submit(read(1, 0, 600), t(10_000_000));
        slow.advance_to(t(60_000_000));
        let slow_done = slow.drain_completions()[0];

        assert!(slow_done.response_time() > fast_done.response_time());
    }

    #[test]
    fn immediate_ramp_delays_queued_request() {
        let mut d = disk();
        // Slow the disk down first.
        d.request_rpm_change(t(0), Rpm::new(3_600), RpmChangePriority::WhenIdle);
        d.advance_to(t(6_000_000));
        assert_eq!(
            d.state(),
            DiskState::Idle {
                rpm: Rpm::new(3_600)
            }
        );
        // A request arrives; the policy driver sees the arrival first and
        // orders a ramp to full speed before handing the disk the request.
        d.request_rpm_change(t(6_000_000), Rpm::new(12_000), RpmChangePriority::Immediate);
        d.submit(read(1, 0, 8), t(6_000_000));
        // The full ramp must finish before service.
        let ramp = d
            .params()
            .rpm_change_time(Rpm::new(3_600), Rpm::new(12_000));
        d.advance_to(t(20_000_000));
        let done = d.drain_completions();
        assert_eq!(done.len(), 1);
        assert!(done[0].response_time() >= ramp);
        if let Some(rpm) = d.current_rpm() {
            assert_eq!(rpm, Rpm::new(12_000));
        }
    }

    #[test]
    fn when_idle_pending_change_applies_after_queue_drains() {
        let mut d = disk();
        d.submit(read(1, 0, 600), t(0));
        // Busy: the change is deferred.
        assert!(!d.request_rpm_change(t(100), Rpm::new(3_600), RpmChangePriority::WhenIdle));
        d.advance_to(t(60_000_000));
        // Queue drained; transition should have started and completed.
        assert_eq!(
            d.state(),
            DiskState::Idle {
                rpm: Rpm::new(3_600)
            }
        );
    }

    #[test]
    fn idle_periods_recorded_between_requests() {
        let mut d = disk();
        d.submit(read(1, 0, 8), t(0));
        d.advance_to(t(1_000_000));
        d.submit(read(2, 0, 8), t(2_000_000));
        d.finish(t(3_000_000));
        // Period 1: t=0 arrival closes the initial idle (zero-length at 0 is
        // dropped); period 2: completion(~10ms) .. 2s; period 3: tail.
        let h = d.idle_tracker().histogram();
        assert!(h.total() >= 2);
    }

    #[test]
    fn time_cannot_go_backwards() {
        let mut d = disk();
        d.advance_to(t(100));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.advance_to(t(50));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn energy_equals_sum_of_state_buckets() {
        let mut d = disk();
        d.submit(read(1, 0, 128), t(0));
        d.start_spin_down(t(0)); // rejected: busy
        d.advance_to(t(500_000));
        d.start_spin_down(t(500_000));
        d.advance_to(t(30_000_000));
        let total = d.energy().total_joules();
        let sum: f64 = d.energy().iter().map(|(_, s)| s.joules).sum();
        assert!((total - sum).abs() < 1e-9);
        // All simulated time is accounted for.
        assert_eq!(d.energy().total_time(), SimDuration::from_secs(30));
    }

    #[test]
    fn trace_records_transitions_and_request_span() {
        use simkit::telemetry::TraceEvent;
        let mut d = disk();
        d.enable_trace(2, 5);
        d.submit(read(9, 0, 128), t(1_000));
        d.advance_to(t(10_000_000));
        let events = d.take_trace_events();
        let labels: Vec<(&str, &str)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::DiskState { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            labels,
            vec![("idle", "seek"), ("seek", "transfer"), ("transfer", "idle")]
        );
        let requests: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Request { .. }))
            .collect();
        assert_eq!(requests.len(), 1);
        let TraceEvent::Request {
            node,
            disk,
            id,
            arrival,
            start,
            end,
            energy_nj,
        } = requests[0]
        else {
            unreachable!()
        };
        assert_eq!((*node, *disk, *id), (2, 5, 9));
        assert_eq!(*arrival, t(1_000));
        assert!(start >= arrival && end > start);
        // The service window spans seek + transfer at idle-or-above power,
        // so the metered energy must be strictly positive.
        assert!(*energy_nj > 0, "service-window energy should be metered");
        // Draining empties the buffer.
        assert!(d.take_trace_events().is_empty());
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let mut d = disk();
        d.submit(read(1, 0, 128), t(0));
        d.advance_to(t(10_000_000));
        assert!(d.take_trace_events().is_empty());
    }

    #[test]
    fn record_metrics_publishes_energy_and_counters() {
        let mut d = disk();
        d.submit(read(1, 0, 128), t(0));
        d.advance_to(t(1_000_000));
        let mut reg = simkit::telemetry::MetricsRegistry::new();
        d.record_metrics(&mut reg, "disk.n0.d0");
        assert_eq!(reg.get_counter("disk.n0.d0.requests_served"), Some(1));
        let total = reg.get_gauge("disk.n0.d0.energy_joules.total").unwrap();
        assert!((total - d.energy().total_joules()).abs() < 1e-12);
    }

    #[test]
    fn bad_sector_fails_reads_until_remapped() {
        let mut d = disk();
        let mut profile = simkit::fault::DiskFaultProfile::none();
        profile.bad_sectors = vec![64];
        d.install_faults(&profile);
        // A read overlapping sector 64 fails deterministically.
        d.submit(read(1, 0, 128), t(0));
        d.advance_to(t(10_000_000));
        let done = d.drain_completions();
        assert_eq!(done[0].outcome, ServiceOutcome::BadSector);
        // A disjoint read succeeds.
        d.submit(read(2, 1_000, 8), t(10_000_000));
        d.advance_to(t(20_000_000));
        assert!(d.drain_completions()[0].outcome.is_ok());
        // Remap clears the range; the original read now succeeds.
        assert_eq!(d.remap_sectors(0, 128), 1);
        assert_eq!(d.remap_sectors(0, 128), 0);
        d.submit(read(3, 0, 128), t(20_000_000));
        d.advance_to(t(30_000_000));
        assert!(d.drain_completions()[0].outcome.is_ok());
        assert_eq!(d.fault_counters().injected_bad_sector, 1);
    }

    #[test]
    fn writes_never_fault() {
        let mut d = disk();
        let mut profile = simkit::fault::DiskFaultProfile::none();
        profile.bad_sectors = vec![0];
        profile.transient_rate = 0.89;
        d.install_faults(&profile);
        for i in 0..20 {
            d.submit(
                DiskRequest::new(i, RequestKind::Write, i * 8, 8),
                d.now().max(t(0)),
            );
            d.advance_to(t((i + 1) * 1_000_000));
        }
        assert!(d.drain_completions().iter().all(|c| c.outcome.is_ok()));
        assert_eq!(d.fault_counters().total_injected(), 0);
    }

    #[test]
    fn transient_errors_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<ServiceOutcome> {
            let mut d = disk();
            let mut profile = simkit::fault::DiskFaultProfile::none();
            profile.transient_rate = 0.3;
            profile.rng_seed = seed;
            d.install_faults(&profile);
            for i in 0..50 {
                d.submit(read(i, i * 64, 8), d.now());
                d.advance_to(t((i + 1) * 1_000_000));
            }
            d.drain_completions().iter().map(|c| c.outcome).collect()
        };
        let a = run(7);
        assert_eq!(a, run(7));
        assert_ne!(a, run(8), "different seeds should flip different coins");
        assert!(a.iter().any(|o| *o == ServiceOutcome::TransientError));
        assert!(a.iter().any(|o| o.is_ok()));
    }

    #[test]
    fn straggler_stretches_service_time() {
        let serve = |factor: f64| {
            let mut d = disk();
            let mut profile = simkit::fault::DiskFaultProfile::none();
            profile.slow_factor = factor;
            d.install_faults(&profile);
            d.submit(read(1, 0, 600), t(0));
            d.advance_to(t(60_000_000));
            d.drain_completions()[0].response_time()
        };
        let nominal = serve(1.0);
        let slow = serve(2.0);
        let ratio = slow.as_secs_f64() / nominal.as_secs_f64();
        // Queue delay is zero here, so response time scales with the factor
        // (controller overhead is part of the stretched transfer phase).
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn inactive_profile_installs_nothing() {
        let mut d = disk();
        d.install_faults(&simkit::fault::DiskFaultProfile::none());
        d.submit(read(1, 0, 128), t(0));
        d.advance_to(t(10_000_000));
        assert!(d.drain_completions()[0].outcome.is_ok());
        assert_eq!(d.fault_counters(), simkit::fault::FaultCounters::default());
    }

    #[test]
    fn faulted_reads_record_fault_trace_events() {
        use simkit::telemetry::TraceEvent;
        let mut d = disk();
        d.enable_trace(0, 0);
        let mut profile = simkit::fault::DiskFaultProfile::none();
        profile.bad_sectors = vec![0];
        d.install_faults(&profile);
        d.submit(read(4, 0, 8), t(0));
        d.advance_to(t(10_000_000));
        let events = d.take_trace_events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::FaultInjected {
                id: 4,
                kind: "bad-sector",
                ..
            }
        )));
    }

    #[test]
    fn elevator_order_respected_under_load() {
        let mut d = disk();
        // Occupy the disk, then queue far/near/mid requests.
        d.submit(read(0, 0, 600), t(0));
        let spc = d.params().sectors_per_cylinder();
        d.submit(read(1, 70_000 * spc, 8), t(10));
        d.submit(read(2, 10_000 * spc, 8), t(20));
        d.submit(read(3, 40_000 * spc, 8), t(30));
        d.advance_to(t(120_000_000));
        let done = d.drain_completions();
        assert_eq!(done.len(), 4);
        let order: Vec<u64> = done.iter().map(|c| c.request.id.0).collect();
        // Arm starts at cylinder 0 sweeping up: 10k, 40k, 70k.
        assert_eq!(order, vec![0, 2, 3, 1]);
    }
}
