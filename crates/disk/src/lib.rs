//! Disk timing and power model for the SDDS reproduction.
//!
//! This crate plays the role DiskSim (augmented with power models) plays in
//! the paper: it simulates a single multi-speed server-class disk with
//!
//! * seek / rotational-latency / transfer timing derived from an explicit
//!   geometry and seek curve ([`params`], [`service`]),
//! * elevator (SCAN) disk-arm scheduling over a request queue
//!   ([`elevator`]),
//! * a power-state machine covering active, idle, spin-down, standby,
//!   spin-up and RPM-change states ([`state`]),
//! * dynamic rotational speed with the quadratic power model of the paper's
//!   Eq. 1 ([`power`]),
//! * per-state energy integration and idle-period statistics ([`energy`],
//!   [`idle`]).
//!
//! The [`Disk`] type is deliberately *passive* with respect to power policy:
//! it exposes control operations (`start_spin_down`, `start_spin_up`,
//! `begin_rpm_change`) and observations, while the policies in `sdds-power`
//! decide when to invoke them.
//!
//! # Example
//!
//! ```
//! use sdds_disk::{Disk, DiskParams, DiskRequest, RequestKind};
//! use simkit::SimTime;
//!
//! let mut disk = Disk::new(DiskParams::paper_defaults()).expect("paper defaults are valid");
//! disk.submit(DiskRequest::new(0, RequestKind::Read, 0, 128), SimTime::ZERO);
//! disk.advance_to(SimTime::from_micros(1_000_000));
//! let done = disk.drain_completions();
//! assert_eq!(done.len(), 1);
//! assert!(disk.energy().total_joules() > 0.0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

mod disk;
pub mod elevator;
pub mod energy;
pub mod error;
pub mod idle;
pub mod params;
pub mod power;
pub mod request;
pub mod service;
pub mod state;

pub use disk::{CompletedRequest, Disk, DiskCounters, RpmChangePriority};
pub use energy::EnergyAccount;
pub use error::DiskError;
pub use idle::IdleTracker;
pub use params::{DiskParams, Rpm, SeekModel};
pub use power::SpindlePowerModel;
pub use request::{DiskRequest, RequestId, RequestKind, ServiceOutcome};
pub use state::DiskState;
