//! Disk configuration: geometry, timing and power parameters.
//!
//! Defaults reproduce Table II of the paper: a 100 GB server disk spinning
//! at 12 000 RPM with speed levels down to 3 600 RPM in 1 200 RPM steps,
//! 16 s spin-up / 10 s spin-down, and the wattages listed there.

use crate::error::DiskError;
use simkit::SimDuration;

/// A rotational speed in revolutions per minute.
///
/// # Example
///
/// ```
/// use sdds_disk::Rpm;
///
/// let r = Rpm::new(12_000);
/// assert_eq!(r.rotation_period().as_millis(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rpm(u32);

impl Rpm {
    /// Creates a rotational speed.
    ///
    /// # Panics
    ///
    /// Panics if `rpm` is zero.
    pub const fn new(rpm: u32) -> Self {
        assert!(rpm > 0, "rotational speed must be positive");
        Rpm(rpm)
    }

    /// The speed as a raw RPM count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Duration of one full platter rotation at this speed.
    pub fn rotation_period(self) -> SimDuration {
        // 60 s/min => period_us = 60e6 / rpm.
        SimDuration::from_micros(60_000_000 / self.0 as u64)
    }

    /// Ratio of this speed to `full`, in `(0, 1]` for sub-full speeds.
    pub fn fraction_of(self, full: Rpm) -> f64 {
        self.0 as f64 / full.0 as f64
    }
}

impl std::fmt::Display for Rpm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} RPM", self.0)
    }
}

/// Piecewise seek-time curve calibrated from three published data points
/// (single-cylinder, average and full-stroke seek), following the classic
/// Ruemmler–Wilkes model: `a + b·√d` for short seeks and `c + e·d` for long
/// ones.
#[derive(Debug, Clone, PartialEq)]
pub struct SeekModel {
    /// Seek time for a single-cylinder move.
    pub single: SimDuration,
    /// Average seek time (assumed to occur at one-third of full stroke).
    pub average: SimDuration,
    /// Full-stroke seek time.
    pub full: SimDuration,
    /// Total number of cylinders.
    pub cylinders: u32,
}

impl SeekModel {
    /// Seek time for moving the arm across `distance` cylinders.
    ///
    /// Returns zero for a zero-distance "seek" (track switch costs are folded
    /// into the rotational latency term).
    pub fn seek_time(&self, distance: u32) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let d = distance as f64;
        let cyl = self.cylinders.max(1) as f64;
        let boundary = cyl / 3.0;
        let t_single = self.single.as_secs_f64();
        let t_avg = self.average.as_secs_f64();
        let t_full = self.full.as_secs_f64();
        let secs = if d <= boundary {
            // a + b*sqrt(d) passing through (1, single) and (cyl/3, average).
            let b = (t_avg - t_single) / (boundary.sqrt() - 1.0);
            let a = t_single - b;
            a + b * d.sqrt()
        } else {
            // c + e*d passing through (cyl/3, average) and (cyl, full).
            let e = (t_full - t_avg) / (cyl - boundary);
            let c = t_avg - e * boundary;
            c + e * d
        };
        SimDuration::from_secs_f64(secs.max(0.0))
    }
}

/// Full configuration of one simulated disk.
///
/// Construct with [`DiskParams::paper_defaults`] and adjust fields, or build
/// a custom configuration and let [`DiskParams::validate`] check its
/// consistency.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    // --- Geometry ---
    /// Bytes per sector.
    pub sector_bytes: u32,
    /// Sectors per track (assumed uniform; zoning is not modeled).
    pub sectors_per_track: u32,
    /// Tracks per cylinder (number of recording surfaces).
    pub heads: u32,
    /// Number of cylinders.
    pub cylinders: u32,

    // --- Timing ---
    /// Seek-time curve.
    pub seek: SeekModel,
    /// Fastest (nominal) rotational speed.
    pub max_rpm: Rpm,
    /// Slowest supported rotational speed (equal to `max_rpm` for a
    /// single-speed disk).
    pub min_rpm: Rpm,
    /// Difference between adjacent speed levels.
    pub rpm_step: u32,
    /// Time to change speed by one `rpm_step`.
    pub rpm_change_per_step: SimDuration,
    /// Time to spin down from any speed to standby.
    pub spin_down_time: SimDuration,
    /// Time to spin up from standby to `max_rpm`.
    pub spin_up_time: SimDuration,
    /// Controller + bus overhead added to every request.
    pub controller_overhead: SimDuration,
    /// Bus bandwidth in bytes per second (Ultra-3 SCSI: 160 MB/s).
    pub bus_bytes_per_sec: u64,

    // --- Power (watts), all quoted at `max_rpm` ---
    /// Power while idle at full speed.
    pub idle_power: f64,
    /// Power while reading or writing at full speed.
    pub active_power: f64,
    /// Power while seeking at full speed.
    pub seek_power: f64,
    /// Power in standby (spun down).
    pub standby_power: f64,
    /// Power while spinning up (also used while accelerating between speed
    /// levels, scaled by the fraction of the speed range being crossed).
    pub spin_up_power: f64,
    /// Power while spinning down / decelerating (coasting).
    pub spin_down_power: f64,
    /// Non-spindle electronics floor subtracted before applying the
    /// quadratic spindle model of Eq. 1.
    pub electronics_power: f64,
}

impl DiskParams {
    /// The configuration of Table II: a 100 GB, 12 000 RPM disk with
    /// multi-speed support down to 3 600 RPM in 1 200 RPM steps.
    pub fn paper_defaults() -> Self {
        DiskParams {
            sector_bytes: 512,
            sectors_per_track: 600,
            heads: 4,
            // 100 GB / (512 B * 600 spt * 4 heads) ~= 81,380 cylinders.
            cylinders: 81_380,
            seek: SeekModel {
                single: SimDuration::from_micros(800),
                average: SimDuration::from_micros(4_700),
                full: SimDuration::from_micros(10_000),
                cylinders: 81_380,
            },
            max_rpm: Rpm::new(12_000),
            min_rpm: Rpm::new(3_600),
            rpm_step: 1_200,
            rpm_change_per_step: SimDuration::from_millis(100),
            spin_down_time: SimDuration::from_secs(10),
            spin_up_time: SimDuration::from_secs(16),
            controller_overhead: SimDuration::from_micros(300),
            bus_bytes_per_sec: 160_000_000,
            idle_power: 17.1,
            active_power: 36.6,
            seek_power: 32.1,
            standby_power: 7.2,
            spin_up_power: 44.8,
            spin_down_power: 7.2,
            electronics_power: 2.5,
        }
    }

    /// A single-speed variant of the paper configuration (spin-down only).
    pub fn paper_single_speed() -> Self {
        let mut p = Self::paper_defaults();
        p.min_rpm = p.max_rpm;
        p
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sector_bytes as u64
            * self.sectors_per_track as u64
            * self.heads as u64
            * self.cylinders as u64
    }

    /// Total number of sectors.
    pub fn total_sectors(&self) -> u64 {
        self.sectors_per_track as u64 * self.heads as u64 * self.cylinders as u64
    }

    /// Sectors per cylinder (all heads).
    pub fn sectors_per_cylinder(&self) -> u64 {
        self.sectors_per_track as u64 * self.heads as u64
    }

    /// The cylinder holding logical sector `lba` (clamped to the last
    /// cylinder for out-of-range addresses).
    pub fn cylinder_of(&self, lba: u64) -> u32 {
        ((lba / self.sectors_per_cylinder()) as u32).min(self.cylinders.saturating_sub(1))
    }

    /// The supported speed levels in increasing order, `min_rpm` up to
    /// `max_rpm` in `rpm_step` increments.
    pub fn rpm_levels(&self) -> Vec<Rpm> {
        let mut levels = Vec::new();
        let mut r = self.min_rpm.get();
        while r < self.max_rpm.get() {
            levels.push(Rpm::new(r));
            r += self.rpm_step;
        }
        levels.push(self.max_rpm);
        levels
    }

    /// Time to change between two speed levels (proportional to the number
    /// of `rpm_step`s crossed, rounding up).
    pub fn rpm_change_time(&self, from: Rpm, to: Rpm) -> SimDuration {
        let delta = from.get().abs_diff(to.get());
        if delta == 0 {
            return SimDuration::ZERO;
        }
        let steps = delta.div_ceil(self.rpm_step.max(1));
        self.rpm_change_per_step * steps as u64
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`DiskError`]:
    /// non-positive geometry, inverted speed range, a speed range not
    /// divisible by the step, or non-positive power values.
    pub fn validate(&self) -> Result<(), DiskError> {
        for (field, v) in [
            ("sector_bytes", self.sector_bytes),
            ("sectors_per_track", self.sectors_per_track),
            ("heads", self.heads),
            ("cylinders", self.cylinders),
        ] {
            if v == 0 {
                return Err(DiskError::Geometry { field });
            }
        }
        if self.min_rpm > self.max_rpm {
            return Err(DiskError::SpeedRange {
                min: self.min_rpm,
                max: self.max_rpm,
            });
        }
        if self.min_rpm != self.max_rpm {
            if self.rpm_step == 0 {
                return Err(DiskError::ZeroRpmStep);
            }
            if !(self.max_rpm.get() - self.min_rpm.get()).is_multiple_of(self.rpm_step) {
                return Err(DiskError::SpeedStep {
                    min: self.min_rpm,
                    max: self.max_rpm,
                    step: self.rpm_step,
                });
            }
        }
        if self.bus_bytes_per_sec == 0 {
            return Err(DiskError::ZeroBusBandwidth);
        }
        for (field, w) in [
            ("idle_power", self.idle_power),
            ("active_power", self.active_power),
            ("seek_power", self.seek_power),
            ("standby_power", self.standby_power),
            ("spin_up_power", self.spin_up_power),
            ("spin_down_power", self.spin_down_power),
            ("electronics_power", self.electronics_power),
        ] {
            if !w.is_finite() || w < 0.0 {
                return Err(DiskError::Power { field, value: w });
            }
        }
        if self.electronics_power >= self.idle_power {
            return Err(DiskError::ElectronicsFloor {
                electronics: self.electronics_power,
                idle: self.idle_power,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        DiskParams::paper_defaults().validate().unwrap();
        DiskParams::paper_single_speed().validate().unwrap();
    }

    #[test]
    fn capacity_close_to_100gb() {
        let p = DiskParams::paper_defaults();
        let gb = p.capacity_bytes() as f64 / 1e9;
        assert!((gb - 100.0).abs() < 1.0, "capacity {gb} GB");
    }

    #[test]
    fn rotation_period_at_speeds() {
        assert_eq!(Rpm::new(12_000).rotation_period().as_millis(), 5);
        assert_eq!(Rpm::new(3_600).rotation_period().as_micros(), 16_666);
    }

    #[test]
    fn rpm_levels_cover_range() {
        let p = DiskParams::paper_defaults();
        let levels = p.rpm_levels();
        assert_eq!(levels.len(), 8); // 3600,4800,...,12000
        assert_eq!(levels[0], Rpm::new(3_600));
        assert_eq!(*levels.last().unwrap(), Rpm::new(12_000));
        assert!(levels.windows(2).all(|w| w[1].get() - w[0].get() == 1_200));
    }

    #[test]
    fn single_speed_has_one_level() {
        let p = DiskParams::paper_single_speed();
        assert_eq!(p.rpm_levels(), vec![Rpm::new(12_000)]);
    }

    #[test]
    fn seek_time_monotone_and_anchored() {
        let p = DiskParams::paper_defaults();
        assert_eq!(p.seek.seek_time(0), SimDuration::ZERO);
        let single = p.seek.seek_time(1);
        assert_eq!(single, p.seek.single);
        let avg = p.seek.seek_time(p.cylinders / 3);
        assert!((avg.as_secs_f64() - p.seek.average.as_secs_f64()).abs() < 1e-4);
        let full = p.seek.seek_time(p.cylinders);
        assert!((full.as_secs_f64() - p.seek.full.as_secs_f64()).abs() < 1e-4);
        // Monotone over a sample of distances.
        let mut last = SimDuration::ZERO;
        for d in [1, 10, 100, 1_000, 10_000, 27_000, 50_000, 81_380] {
            let t = p.seek.seek_time(d);
            assert!(t >= last, "seek curve decreased at distance {d}");
            last = t;
        }
    }

    #[test]
    fn rpm_change_time_scales_with_steps() {
        let p = DiskParams::paper_defaults();
        let one = p.rpm_change_time(Rpm::new(12_000), Rpm::new(10_800));
        let seven = p.rpm_change_time(Rpm::new(12_000), Rpm::new(3_600));
        assert_eq!(one, p.rpm_change_per_step);
        assert_eq!(seven, p.rpm_change_per_step * 7);
        assert_eq!(
            p.rpm_change_time(Rpm::new(4_800), Rpm::new(4_800)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn cylinder_of_clamps() {
        let p = DiskParams::paper_defaults();
        assert_eq!(p.cylinder_of(0), 0);
        assert_eq!(p.cylinder_of(u64::MAX), p.cylinders - 1);
        let mid = p.total_sectors() / 2;
        let c = p.cylinder_of(mid);
        assert!(c > 0 && c < p.cylinders);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut p = DiskParams::paper_defaults();
        p.min_rpm = Rpm::new(13_000);
        assert!(p.validate().is_err());

        let mut p = DiskParams::paper_defaults();
        p.rpm_step = 1_000; // 8400 not divisible
        assert!(p.validate().is_err());

        let mut p = DiskParams::paper_defaults();
        p.electronics_power = 20.0;
        assert!(p.validate().is_err());

        let mut p = DiskParams::paper_defaults();
        p.idle_power = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = DiskParams::paper_defaults();
        p.heads = 0;
        assert!(p.validate().is_err());
    }
}
