//! The multi-speed spindle power model (Eq. 1 of the paper).
//!
//! The paper adopts the DRPM power model `Π = K·ω²/R`: spindle power grows
//! quadratically with angular velocity. We anchor the model at the measured
//! full-speed wattages of Table II by splitting each measured figure into a
//! speed-independent electronics floor plus a quadratic spindle term, so the
//! model reproduces the published numbers exactly at 12 000 RPM and scales
//! them quadratically below it.

use crate::error::DiskError;
use crate::params::{DiskParams, Rpm};
use crate::state::DiskState;

/// Computes the power drawn in any disk state at any rotational speed.
///
/// # Example
///
/// ```
/// use sdds_disk::{DiskParams, Rpm, SpindlePowerModel};
///
/// let params = DiskParams::paper_defaults();
/// let model = SpindlePowerModel::new(&params).expect("paper defaults are valid");
/// // Idle at full speed reproduces Table II exactly.
/// assert!((model.idle_watts(Rpm::new(12_000)) - 17.1).abs() < 1e-9);
/// // Idle at 3,600 RPM costs far less (quadratic scaling).
/// assert!(model.idle_watts(Rpm::new(3_600)) < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpindlePowerModel {
    /// `K/R` of Eq. 1 in W/RPM² for the idle spindle.
    k_idle: f64,
    /// Extra (speed-independent) head/channel power while transferring.
    active_extra: f64,
    /// Extra (speed-independent) arm power while seeking.
    seek_extra: f64,
    electronics: f64,
    standby: f64,
    spin_up: f64,
    spin_down: f64,
    max_rpm: Rpm,
}

impl SpindlePowerModel {
    /// Builds the model from a disk configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`DiskError`] produced by [`DiskParams::validate`] if
    /// the configuration is inconsistent.
    pub fn new(params: &DiskParams) -> Result<Self, DiskError> {
        params.validate()?;
        let w_max = params.max_rpm.get() as f64;
        let k_idle = (params.idle_power - params.electronics_power) / (w_max * w_max);
        Ok(SpindlePowerModel {
            k_idle,
            active_extra: (params.active_power - params.idle_power).max(0.0),
            seek_extra: (params.seek_power - params.idle_power).max(0.0),
            electronics: params.electronics_power,
            standby: params.standby_power,
            spin_up: params.spin_up_power,
            spin_down: params.spin_down_power,
            max_rpm: params.max_rpm,
        })
    }

    /// Spindle + electronics power while idle at `rpm` (Eq. 1 plus floor).
    pub fn idle_watts(&self, rpm: Rpm) -> f64 {
        let w = rpm.get() as f64;
        self.electronics + self.k_idle * w * w
    }

    /// Power while transferring data at `rpm`.
    ///
    /// The head/channel overhead is modeled as speed-independent; the
    /// spindle term scales quadratically.
    pub fn active_watts(&self, rpm: Rpm) -> f64 {
        self.idle_watts(rpm) + self.active_extra
    }

    /// Power while seeking at `rpm`.
    pub fn seek_watts(&self, rpm: Rpm) -> f64 {
        self.idle_watts(rpm) + self.seek_extra
    }

    /// Power in standby (platters stopped).
    pub fn standby_watts(&self) -> f64 {
        self.standby
    }

    /// Power while accelerating the spindle.
    ///
    /// Accelerating across a fraction of the speed range costs the same
    /// fraction of the full spin-up power, with the idle power at the target
    /// speed as a lower bound (the spindle must at least sustain itself).
    pub fn accelerate_watts(&self, from: Rpm, to: Rpm) -> f64 {
        let span = (to.get() as f64 - from.get() as f64).max(0.0);
        let frac = span / self.max_rpm.get() as f64;
        (self.spin_up * frac).max(self.idle_watts(to))
    }

    /// Power while decelerating the spindle (coasting with braking
    /// electronics only).
    pub fn decelerate_watts(&self) -> f64 {
        self.spin_down
    }

    /// Power drawn in `state` (the state carries its own speed context).
    pub fn watts(&self, state: &DiskState) -> f64 {
        match *state {
            DiskState::Idle { rpm } => self.idle_watts(rpm),
            DiskState::Seeking { rpm } => self.seek_watts(rpm),
            DiskState::Transferring { rpm } => self.active_watts(rpm),
            DiskState::Standby => self.standby_watts(),
            DiskState::SpinningDown => self.decelerate_watts(),
            DiskState::SpinningUp => self.spin_up,
            DiskState::ChangingSpeed { from, to } => {
                if to.get() >= from.get() {
                    self.accelerate_watts(from, to)
                } else {
                    self.decelerate_watts()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SpindlePowerModel {
        SpindlePowerModel::new(&DiskParams::paper_defaults()).unwrap()
    }

    #[test]
    fn anchored_at_table2_wattages() {
        let m = model();
        let full = Rpm::new(12_000);
        assert!((m.idle_watts(full) - 17.1).abs() < 1e-9);
        assert!((m.active_watts(full) - 36.6).abs() < 1e-9);
        assert!((m.seek_watts(full) - 32.1).abs() < 1e-9);
        assert!((m.standby_watts() - 7.2).abs() < 1e-9);
    }

    #[test]
    fn quadratic_scaling() {
        let m = model();
        // Spindle-only share at half speed should be a quarter of full.
        let spindle_full = m.idle_watts(Rpm::new(12_000)) - 2.5;
        let spindle_half = m.idle_watts(Rpm::new(6_000)) - 2.5;
        assert!((spindle_half - spindle_full / 4.0).abs() < 1e-9);
    }

    #[test]
    fn idle_power_monotone_in_rpm() {
        let m = model();
        let p = DiskParams::paper_defaults();
        let levels = p.rpm_levels();
        for w in levels.windows(2) {
            assert!(m.idle_watts(w[0]) < m.idle_watts(w[1]));
        }
    }

    #[test]
    fn low_speed_idle_beats_standby_power_only_marginally() {
        // At 3,600 RPM the disk should still cost less than half of the
        // full-speed idle (this is the whole point of multi-speed disks),
        // but remain above standby.
        let m = model();
        let low = m.idle_watts(Rpm::new(3_600));
        assert!(low < 17.1 / 2.0);
        assert!(low < m.standby_watts() || low > 0.0);
    }

    #[test]
    fn acceleration_power_bounded() {
        let m = model();
        let full_swing = m.accelerate_watts(Rpm::new(3_600), Rpm::new(12_000));
        assert!(full_swing <= 44.8 + 1e-9);
        // A tiny step still costs at least the target idle power.
        let step = m.accelerate_watts(Rpm::new(10_800), Rpm::new(12_000));
        assert!(step >= m.idle_watts(Rpm::new(12_000)));
    }

    #[test]
    fn state_dispatch() {
        let m = model();
        let full = Rpm::new(12_000);
        assert_eq!(m.watts(&DiskState::Idle { rpm: full }), m.idle_watts(full));
        assert_eq!(m.watts(&DiskState::Standby), 7.2);
        assert_eq!(m.watts(&DiskState::SpinningUp), 44.8);
        assert_eq!(m.watts(&DiskState::SpinningDown), 7.2);
        // A full-swing acceleration draws far more than coasting down.
        let accel = DiskState::ChangingSpeed {
            from: Rpm::new(3_600),
            to: Rpm::new(12_000),
        };
        let decel = DiskState::ChangingSpeed {
            from: Rpm::new(12_000),
            to: Rpm::new(3_600),
        };
        assert!(m.watts(&accel) > m.watts(&decel));
        // Even a one-step acceleration at least sustains the target speed.
        let small = DiskState::ChangingSpeed {
            from: Rpm::new(3_600),
            to: Rpm::new(4_800),
        };
        assert!(m.watts(&small) >= m.idle_watts(Rpm::new(4_800)));
    }
}
