//! The disk power-state machine.

use crate::params::Rpm;

/// The instantaneous operating state of a disk.
///
/// The state determines the power draw (via
/// [`SpindlePowerModel::watts`](crate::SpindlePowerModel::watts)) and
/// whether the disk can serve requests. States that involve platter motion
/// carry the relevant speed so the quadratic power model can be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskState {
    /// Platters spinning at `rpm`, no request in service.
    Idle {
        /// Current rotational speed.
        rpm: Rpm,
    },
    /// Arm moving to the target cylinder at `rpm`.
    Seeking {
        /// Current rotational speed.
        rpm: Rpm,
    },
    /// Heads transferring data (includes rotational-latency wait) at `rpm`.
    Transferring {
        /// Current rotational speed.
        rpm: Rpm,
    },
    /// Platters decelerating to a stop.
    SpinningDown,
    /// Platters stopped; only standby electronics powered.
    Standby,
    /// Platters accelerating from standstill to full speed.
    SpinningUp,
    /// Platters moving between two speed levels.
    ChangingSpeed {
        /// Speed at the start of the transition.
        from: Rpm,
        /// Speed at the end of the transition.
        to: Rpm,
    },
}

impl DiskState {
    /// Returns `true` if the disk can start serving a request in this state
    /// without first completing a transition.
    pub fn can_serve(&self) -> bool {
        matches!(self, DiskState::Idle { .. })
    }

    /// Returns `true` if the disk is actively serving a request.
    pub fn is_busy_serving(&self) -> bool {
        matches!(
            self,
            DiskState::Seeking { .. } | DiskState::Transferring { .. }
        )
    }

    /// Returns `true` if this state is a timed transition that must run to
    /// completion (spin-up/down, speed change).
    pub fn is_transition(&self) -> bool {
        matches!(
            self,
            DiskState::SpinningDown | DiskState::SpinningUp | DiskState::ChangingSpeed { .. }
        )
    }

    /// The rotational speed in this state, or `None` when the platters are
    /// stopped or between speeds.
    pub fn rpm(&self) -> Option<Rpm> {
        match *self {
            DiskState::Idle { rpm }
            | DiskState::Seeking { rpm }
            | DiskState::Transferring { rpm } => Some(rpm),
            _ => None,
        }
    }

    /// A short label for statistics and display.
    pub fn label(&self) -> &'static str {
        match self {
            DiskState::Idle { .. } => "idle",
            DiskState::Seeking { .. } => "seek",
            DiskState::Transferring { .. } => "transfer",
            DiskState::SpinningDown => "spin-down",
            DiskState::Standby => "standby",
            DiskState::SpinningUp => "spin-up",
            DiskState::ChangingSpeed { .. } => "speed-change",
        }
    }
}

impl std::fmt::Display for DiskState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskState::Idle { rpm } => write!(f, "idle@{rpm}"),
            DiskState::Seeking { rpm } => write!(f, "seek@{rpm}"),
            DiskState::Transferring { rpm } => write!(f, "transfer@{rpm}"),
            DiskState::ChangingSpeed { from, to } => write!(f, "speed-change {from}->{to}"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_and_transition_flags() {
        let full = Rpm::new(12_000);
        assert!(DiskState::Idle { rpm: full }.can_serve());
        assert!(!DiskState::Standby.can_serve());
        assert!(!DiskState::SpinningUp.can_serve());
        assert!(DiskState::Seeking { rpm: full }.is_busy_serving());
        assert!(DiskState::Transferring { rpm: full }.is_busy_serving());
        assert!(!DiskState::Idle { rpm: full }.is_busy_serving());
        assert!(DiskState::SpinningDown.is_transition());
        assert!(DiskState::ChangingSpeed {
            from: full,
            to: Rpm::new(3_600)
        }
        .is_transition());
        assert!(!DiskState::Standby.is_transition());
    }

    #[test]
    fn rpm_extraction() {
        let r = Rpm::new(4_800);
        assert_eq!(DiskState::Idle { rpm: r }.rpm(), Some(r));
        assert_eq!(DiskState::Standby.rpm(), None);
        assert_eq!(
            DiskState::ChangingSpeed {
                from: r,
                to: Rpm::new(6_000)
            }
            .rpm(),
            None
        );
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(DiskState::Standby.label(), "standby");
        let s = DiskState::Idle {
            rpm: Rpm::new(12_000),
        };
        assert_eq!(s.to_string(), "idle@12000 RPM");
    }
}
