//! The policy driver: an I/O node's disk array plus its power policy.

use sdds_disk::{CompletedRequest, Disk, DiskCounters, DiskParams, DiskRequest};
use simkit::kernel::{ArbitrationPolicy, Calendar, SlotId};
use simkit::telemetry::{MetricsRegistry, TraceEvent, TraceSink};
use simkit::{SimDuration, SimTime};

use crate::decide::{
    node_idle, Decision, EnergyPolicy, PolicyEvent, PolicySnapshot, TimerDirective,
};
use crate::error::PolicyError;
use crate::policy::{PolicyContext, PolicyKind};

/// Tracing context for the driver: the node's index in the storage
/// topology plus the buffer policy-decision events are recorded into.
#[derive(Debug)]
struct ArrayTrace {
    node: u32,
    sink: TraceSink,
    /// First energy-saving action ("spin-down"/"speed-change") the policy
    /// took during the current node-idle window, so the window-summary
    /// [`TraceEvent::NodeIdle`] can attribute the window to it.
    window_action: Option<&'static str>,
}

/// One I/O node's disks managed together by a power policy.
///
/// `PoweredArray` interleaves three event sources in timestamp order while
/// simulated time advances: the disks' own phase boundaries (service
/// completions, transition ends), the policy's single pending timer, and
/// request submissions from the caller. It notifies the policy when the
/// *node* becomes idle (no member disk has outstanding work), fires its
/// timers, and lets it react to request arrivals — the I/O-node-level
/// control loop of §II ("if spinning down an I/O node, we spin down all
/// disks attached to it").
///
/// # Event dispatch
///
/// Every event source rides the unified [`Calendar`] from
/// [`simkit::kernel`]: each member disk holds one slot for its next phase
/// boundary and the policy timer holds the last slot, so finding the next
/// event source is O(log n) and firing an event only advances the disks
/// whose state actually changes at that instant — idle members of a large
/// array are left alone until the enclosing `advance_to` target is
/// reached. Disks register before the timer, so under the default
/// [`ArbitrationPolicy::Deterministic`] a disk boundary and a timer due
/// at the same instant fire disk-first (the historical order);
/// [`PoweredArray::set_arbitration`] swaps in seeded-shuffle or priority
/// arbitration for same-time ties.
///
/// # Example
///
/// ```
/// use sdds_disk::{DiskParams, DiskRequest, RequestKind};
/// use sdds_power::{PolicyKind, PoweredArray};
/// use simkit::{SimDuration, SimTime};
///
/// let mut node = PoweredArray::new(
///     DiskParams::paper_defaults(),
///     2,
///     PolicyKind::staggered_default(),
/// )
/// .expect("paper defaults are valid");
/// node.submit(0, DiskRequest::new(0, RequestKind::Read, 0, 8), SimTime::ZERO);
/// node.finish(SimTime::ZERO + SimDuration::from_secs(30));
/// assert_eq!(node.drain_completions().len(), 1);
/// ```
#[derive(Debug)]
pub struct PoweredArray {
    disks: Vec<Disk>,
    policy: Box<dyn EnergyPolicy>,
    /// Reusable output buffer for [`EnergyPolicy::decide`] calls (cleared
    /// before every event, so steady-state dispatch allocates nothing).
    decision: Decision,
    /// Set once the policy has been told about the current no-work period.
    idle_signaled: bool,
    /// When the node last ran out of work (valid while it has none).
    node_idle_since: Option<SimTime>,
    /// Total outstanding requests across member disks, maintained
    /// incrementally (submissions add, completions observed while stepping
    /// subtract).
    outstanding: usize,
    /// The unified event calendar: one slot per member disk (its next
    /// phase boundary) plus one slot for the policy's pending timer.
    cal: Calendar,
    /// Calendar slot of member disk `i` (registered in index order, so
    /// deterministic arbitration preserves the historical disk ordering).
    disk_slots: Vec<SlotId>,
    /// Calendar slot of the policy timer (registered after every disk:
    /// at equal times, disks fire first under deterministic arbitration).
    timer_slot: SlotId,
    /// Cached result of [`PoweredArray::next_event_time`], kept current at
    /// every public-API boundary (the calendar needs `&mut` to peek).
    cached_next: Option<SimTime>,
    /// Telemetry buffer for policy decisions; `None` (the default) keeps
    /// tracing entirely off the hot path.
    trace: Option<ArrayTrace>,
}

impl PoweredArray {
    /// Creates an array of `count` identical disks at time zero, managed
    /// by the given policy kind.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if `count` is zero, the disk parameters
    /// are invalid, or the policy rejects the configuration.
    pub fn new(params: DiskParams, count: usize, kind: PolicyKind) -> Result<Self, PolicyError> {
        let policy = kind.build(&params, PolicyContext::default())?;
        Self::with_policy(params, count, policy)
    }

    /// Creates an array managed by an explicit policy object.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if `count` is zero or the disk
    /// parameters are invalid.
    pub fn with_policy(
        params: DiskParams,
        count: usize,
        policy: Box<dyn EnergyPolicy>,
    ) -> Result<Self, PolicyError> {
        if count == 0 {
            return Err(PolicyError::NoDisks);
        }
        let disks = (0..count)
            .map(|_| Disk::new(params.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let mut cal = Calendar::new(ArbitrationPolicy::Deterministic);
        let disk_slots = (0..count).map(|_| cal.register()).collect();
        let timer_slot = cal.register();
        Ok(PoweredArray {
            disks,
            policy,
            decision: Decision::new(),
            idle_signaled: false,
            node_idle_since: Some(SimTime::ZERO),
            outstanding: 0,
            cal,
            disk_slots,
            timer_slot,
            cached_next: None,
            trace: None,
        })
    }

    /// Replaces the same-time arbitration policy of this array's event
    /// calendar. Call before the first submission: switching mid-run
    /// would leave pending entries ordered under the old policy.
    pub fn set_arbitration(&mut self, policy: ArbitrationPolicy) {
        self.cal.set_policy(policy);
    }

    /// Enables structured tracing on the driver and every member disk,
    /// tagging events with this node's index in the storage topology.
    ///
    /// The driver itself records [`TraceEvent::PolicyDecision`] events by
    /// diffing each disk's power counters across every policy hook, so a
    /// decision is attributed to the hook (`"idle-start"`, `"timer"`,
    /// `"arrival"`, `"after-submit"`) that made it. Tracing only buffers
    /// events and never alters the simulation.
    pub fn enable_trace(&mut self, node: u32) {
        for (i, disk) in self.disks.iter_mut().enumerate() {
            disk.enable_trace(node, i as u32);
        }
        self.trace = Some(ArrayTrace {
            node,
            sink: TraceSink::new(),
            window_action: None,
        });
    }

    /// Removes and returns all trace events recorded so far by the driver
    /// and its member disks (empty when tracing was never enabled).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        let mut out = match self.trace.as_mut() {
            Some(tr) => tr.sink.take_events(),
            None => Vec::new(),
        };
        for disk in &mut self.disks {
            out.extend(disk.take_trace_events());
        }
        out
    }

    /// Publishes driver- and disk-level metrics into `registry`: every
    /// member disk under `disk.n<node>.d<i>` plus node totals under
    /// `power.n<node>`.
    pub fn record_metrics(&self, registry: &mut MetricsRegistry, node: u32) {
        for (i, d) in self.disks.iter().enumerate() {
            d.record_metrics(registry, &format!("disk.n{node}.d{i}"));
        }
        registry.gauge(&format!("power.n{node}.total_joules"), self.total_joules());
        registry.gauge(
            &format!("power.n{node}.total_idle_s"),
            self.total_idle().as_secs_f64(),
        );
    }

    /// Snapshots the member disks' power counters if tracing is enabled;
    /// the snapshot brackets a policy hook for decision attribution.
    fn counters_before_hook(&self) -> Option<Vec<DiskCounters>> {
        self.trace
            .is_some()
            .then(|| self.disks.iter().map(|d| d.counters()).collect())
    }

    /// Records one [`TraceEvent::PolicyDecision`] per power action a
    /// policy hook just performed, by diffing against `before`.
    fn record_policy_actions(
        &mut self,
        t: SimTime,
        trigger: &'static str,
        before: &[DiskCounters],
        snap: PolicySnapshot,
    ) {
        let policy = self.policy.name();
        let Some(tr) = self.trace.as_mut() else {
            return;
        };
        for (i, (d, b)) in self.disks.iter().zip(before).enumerate() {
            let c = d.counters();
            for (delta, action) in [
                (c.spin_downs > b.spin_downs, "spin-down"),
                (c.spin_ups > b.spin_ups, "spin-up"),
                (c.rpm_changes > b.rpm_changes, "speed-change"),
            ] {
                if delta {
                    if matches!(action, "spin-down" | "speed-change") && tr.window_action.is_none()
                    {
                        tr.window_action = Some(action);
                    }
                    tr.sink.record(TraceEvent::PolicyDecision {
                        at: t,
                        node: tr.node,
                        disk: i as u32,
                        policy,
                        trigger,
                        action,
                        predicted_idle_us: snap.predicted_idle_us,
                        forecast_us: snap.forecast_us,
                        mode: snap.mode,
                    });
                }
            }
        }
    }

    /// The member disks (read-only).
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// Installs one fault profile per member disk (index-aligned).
    /// Extra profiles are ignored; missing ones leave the member
    /// fault-free. See [`sdds_disk::Disk::install_faults`] for what the
    /// disk layer does (and does not) enforce.
    pub fn install_faults(&mut self, profiles: &[simkit::fault::DiskFaultProfile]) {
        for (disk, profile) in self.disks.iter_mut().zip(profiles) {
            disk.install_faults(profile);
        }
    }

    /// Remaps bad sectors overlapping `[lba, lba + sectors)` on member
    /// `disk`, returning how many sectors were remapped.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    pub fn remap_sectors(&mut self, disk: usize, lba: u64, sectors: u32) -> u32 {
        self.disks[disk].remap_sectors(lba, sectors)
    }

    /// Sum of the member disks' fault-injection counters.
    pub fn fault_counters(&self) -> simkit::fault::FaultCounters {
        let mut total = simkit::fault::FaultCounters::default();
        for disk in &self.disks {
            total.merge(&disk.fault_counters());
        }
        total
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The next instant at which this node needs attention (a disk phase
    /// boundary or the policy timer), if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.cached_next
    }

    /// Advances to `t`, firing disk events and policy timers in order.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than any disk's current time.
    pub fn advance_to(&mut self, t: SimTime) {
        while let Some((at, slot)) = self.cal.pop_due(t) {
            if slot == self.timer_slot {
                self.fire_timer(at);
            } else {
                self.step_disks(at, slot);
            }
        }
        for disk in &mut self.disks {
            disk.advance_to(t);
        }
        self.refresh_idle_state();
        self.refresh_cached_next();
    }

    /// Submits a request to member disk `disk` at `t`, routing the arrival
    /// through the policy.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range or `t` is earlier than the current
    /// time.
    pub fn submit(&mut self, disk: usize, request: DiskRequest, t: SimTime) {
        assert!(disk < self.disks.len(), "disk index {disk} out of range");
        self.advance_to(t);
        let completed_idle = if self.outstanding == 0 {
            self.node_idle_since.map(|s| t.saturating_since(s))
        } else {
            None
        };
        if let (Some(idle), Some(tr)) = (completed_idle, self.trace.as_mut()) {
            // Summarize the node-idle window that this arrival closes,
            // attributed to the first energy-saving action the policy took
            // inside it ("none" when the node just stayed spinning).
            let action = tr.window_action.take().unwrap_or("none");
            tr.sink.record(TraceEvent::NodeIdle {
                at: t,
                node: tr.node,
                idle_us: idle.as_micros(),
                action,
            });
        }
        if self.outstanding == 0 {
            // Any pending idle-period action is now moot.
            self.cal.retarget(self.timer_slot, None);
        }
        self.dispatch(PolicyEvent::RequestArrival { t, completed_idle }, "arrival");
        self.disks[disk].submit(request, t);
        self.outstanding += 1;
        self.idle_signaled = false;
        self.node_idle_since = None;
        // The arrival events and the submission may have started service or
        // transitions on any member disk; `dispatch` re-syncs after each.
        self.dispatch(PolicyEvent::AfterSubmit { t }, "after-submit");
        self.refresh_cached_next();
    }

    /// Finishes the simulation at `t`.
    pub fn finish(&mut self, t: SimTime) {
        self.advance_to(t);
        for disk in &mut self.disks {
            disk.finish(t);
        }
    }

    /// Removes and returns completions from all member disks as
    /// `(disk_index, completion)` pairs.
    pub fn drain_completions(&mut self) -> Vec<(usize, CompletedRequest)> {
        let mut out = Vec::new();
        self.drain_completions_with(|i, c| out.push((i, c)));
        out
    }

    /// Feeds every member-disk completion to `sink` as
    /// `(disk_index, completion)` and clears them, allocating nothing —
    /// the hot-path variant of [`PoweredArray::drain_completions`].
    pub fn drain_completions_with(&mut self, mut sink: impl FnMut(usize, CompletedRequest)) {
        for (i, disk) in self.disks.iter_mut().enumerate() {
            disk.for_each_completion(|c| sink(i, c));
        }
    }

    /// Total energy consumed so far, in joules.
    pub fn total_joules(&self) -> f64 {
        self.disks.iter().map(|d| d.energy().total_joules()).sum()
    }

    /// Sum of each disk's completed idle time.
    pub fn total_idle(&self) -> SimDuration {
        self.disks
            .iter()
            .map(|d| d.idle_tracker().total_idle())
            .sum()
    }

    /// Retargets disk `i`'s calendar slot after its schedule may have
    /// changed (a no-op when the next event time is unchanged).
    fn sync_disk(&mut self, i: usize) {
        self.cal
            .retarget(self.disk_slots[i], self.disks[i].next_event_time());
    }

    /// Re-caches every disk's next event time (used after policy hooks,
    /// which may touch any member).
    fn sync_all_disks(&mut self) {
        for i in 0..self.disks.len() {
            self.sync_disk(i);
        }
    }

    /// Recomputes the cached public next-event time.
    fn refresh_cached_next(&mut self) {
        self.cached_next = self.cal.peek_time();
    }

    /// Fires the disk boundary popped at `to` (slot `first`), then every
    /// further disk due at the same instant that the arbitration policy
    /// orders before the timer — under deterministic arbitration that is
    /// every due disk, in index order, exactly the historical batch.
    /// Idle members are left untouched.
    fn step_disks(&mut self, to: SimTime, first: SlotId) {
        let mut slot = first;
        loop {
            let i = slot.index();
            let before = self.disks[i].outstanding();
            self.disks[i].advance_to(to);
            self.outstanding -= before - self.disks[i].outstanding();
            self.sync_disk(i);
            match self.cal.peek() {
                Some((at, s)) if at == to && s != self.timer_slot => {
                    self.cal.pop();
                    slot = s;
                }
                _ => break,
            }
        }
        self.refresh_idle_state();
    }

    fn fire_timer(&mut self, at: SimTime) {
        for disk in &mut self.disks {
            if disk.now() < at {
                disk.advance_to(at);
            }
        }
        self.refresh_idle_state();
        self.dispatch(PolicyEvent::Timer { t: at }, "timer");
    }

    /// Runs one event through the policy: decide, apply the emitted
    /// directives at the event time, honour the timer directive, attribute
    /// any power actions to `trigger` in the trace, and re-sync every
    /// member disk's calendar slot (a decision may touch any member).
    fn dispatch(&mut self, event: PolicyEvent, trigger: &'static str) {
        let t = event.at();
        let before = self.counters_before_hook();
        // Snapshot the learner state *before* the decision mutates it, so
        // the trace records exactly what the policy believed when it acted.
        let snap = before.as_ref().map(|_| self.policy.snapshot());
        self.decision.reset();
        self.policy.decide(event, &self.disks, &mut self.decision);
        self.decision.apply(t, &mut self.disks);
        match self.decision.timer() {
            TimerDirective::Keep => {}
            TimerDirective::Clear => self.cal.retarget(self.timer_slot, None),
            TimerDirective::At(at) => self.cal.retarget(self.timer_slot, Some(at)),
        }
        if let (Some(before), Some(snap)) = (before, snap) {
            self.record_policy_actions(t, trigger, &before, snap);
        }
        self.sync_all_disks();
    }

    /// Tracks node idleness and signals `on_idle_start` exactly once per
    /// no-work period, at the moment every disk is free and settled.
    fn refresh_idle_state(&mut self) {
        debug_assert_eq!(
            self.outstanding,
            self.disks.iter().map(|d| d.outstanding()).sum::<usize>(),
            "incremental outstanding count out of sync"
        );
        if self.outstanding == 0 {
            // Construction guarantees at least one disk, so `max()` over
            // the members is always present.
            if self.node_idle_since.is_none() {
                // The period began when the last disk finished.
                let last = self
                    .disks
                    .iter()
                    .map(|d| d.now())
                    .max()
                    .unwrap_or(SimTime::ZERO);
                self.node_idle_since = Some(last);
            }
            if !self.idle_signaled && node_idle(&self.disks) {
                self.idle_signaled = true;
                let t = self
                    .disks
                    .iter()
                    .map(|d| d.now())
                    .max()
                    .unwrap_or(SimTime::ZERO);
                self.dispatch(PolicyEvent::IdleStart { t }, "idle-start");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_disk::RequestKind;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn req(id: u64) -> DiskRequest {
        DiskRequest::new(id, RequestKind::Read, (id % 7) * 1_000_000, 64)
    }

    #[test]
    fn no_pm_never_transitions() {
        let mut node =
            PoweredArray::new(DiskParams::paper_defaults(), 2, PolicyKind::NoPm).unwrap();
        for i in 0..5 {
            node.submit((i % 2) as usize, req(i), t(i * 2_000_000));
        }
        node.finish(t(60_000_000));
        for d in node.disks() {
            assert_eq!(d.counters().spin_downs, 0);
            assert_eq!(d.counters().rpm_changes, 0);
        }
        assert_eq!(node.drain_completions().len(), 5);
    }

    #[test]
    fn simple_policy_spins_whole_node() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            4,
            PolicyKind::simple_spin_down_default(),
        )
        .unwrap();
        node.submit(0, req(0), t(0));
        // Long gap: the timeout fires and every member disk spins down.
        node.submit(1, req(1), t(300_000_000));
        node.finish(t(400_000_000));
        for d in node.disks() {
            assert!(
                d.counters().spin_downs >= 1,
                "every member disk should spin down together"
            );
        }
    }

    #[test]
    fn node_idle_waits_for_all_members() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            2,
            PolicyKind::simple_spin_down_default(),
        )
        .unwrap();
        // Keep disk 0 busy with a large request while disk 1 idles: the
        // idle signal (and thus spin-down) must wait for both.
        node.submit(0, DiskRequest::new(0, RequestKind::Read, 0, 60_000), t(0));
        node.advance_to(t(2_000_000));
        assert_eq!(node.disks()[1].counters().spin_downs, 0);
        // After the big request completes plus the timeout, both spin down.
        node.finish(t(30_000_000));
        assert!(node.disks()[0].counters().spin_downs >= 1);
        assert!(node.disks()[1].counters().spin_downs >= 1);
    }

    #[test]
    fn simple_policy_saves_energy_on_long_idle() {
        let horizon = t(600_000_000); // 10 minutes
        let mut default =
            PoweredArray::new(DiskParams::paper_single_speed(), 1, PolicyKind::NoPm).unwrap();
        default.submit(0, req(0), t(0));
        default.finish(horizon);

        let mut simple = PoweredArray::new(
            DiskParams::paper_single_speed(),
            1,
            PolicyKind::simple_spin_down_default(),
        )
        .unwrap();
        simple.submit(0, req(0), t(0));
        simple.finish(horizon);

        assert!(
            simple.total_joules() < default.total_joules() * 0.6,
            "simple {} J vs default {} J",
            simple.total_joules(),
            default.total_joules()
        );
    }

    #[test]
    fn history_policy_saves_energy_on_medium_idles() {
        // 10 s gaps: far below the ~60 s spin-down break-even but enough
        // for a speed reduction to pay off.
        let params = DiskParams::paper_defaults();
        let gaps: Vec<SimTime> = (0..20).map(|i| t(i * 10_000_000)).collect();

        let mut default = PoweredArray::new(params.clone(), 1, PolicyKind::NoPm).unwrap();
        for (i, &at) in gaps.iter().enumerate() {
            default.submit(0, req(i as u64), at);
        }
        default.finish(t(210_000_000));

        let mut history =
            PoweredArray::new(params.clone(), 1, PolicyKind::history_based_default()).unwrap();
        for (i, &at) in gaps.iter().enumerate() {
            history.submit(0, req(i as u64), at);
        }
        history.finish(t(210_000_000));

        assert!(
            history.total_joules() < default.total_joules(),
            "history {} J vs default {} J",
            history.total_joules(),
            default.total_joules()
        );
        assert!(history.disks()[0].counters().rpm_changes > 0);
    }

    #[test]
    fn staggered_policy_descends_and_recovers() {
        let params = DiskParams::paper_defaults();
        let mut node =
            PoweredArray::new(params.clone(), 1, PolicyKind::staggered_default()).unwrap();
        node.submit(0, req(0), t(0));
        // 30 s idle: plenty of steps to descend.
        node.submit(0, req(1), t(30_000_000));
        node.finish(t(60_000_000));
        let c = node.disks()[0].counters();
        assert!(c.rpm_changes >= 3, "expected a staggered descent");
        assert_eq!(c.requests_served, 2);
    }

    #[test]
    fn idle_signal_fires_once_per_period() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            1,
            PolicyKind::simple_spin_down_default(),
        )
        .unwrap();
        node.submit(0, req(0), t(0));
        node.finish(t(300_000_000));
        assert_eq!(node.disks()[0].counters().spin_downs, 1);
    }

    #[test]
    fn next_event_time_covers_timer() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            1,
            PolicyKind::simple_spin_down_default(),
        )
        .unwrap();
        node.submit(0, req(0), t(0));
        node.advance_to(t(1_000_000));
        let next = node.next_event_time().expect("timer should be pending");
        assert!(next > t(1_000_000));
    }

    #[test]
    fn cached_next_event_matches_disk_state() {
        let mut node =
            PoweredArray::new(DiskParams::paper_defaults(), 3, PolicyKind::NoPm).unwrap();
        assert_eq!(node.next_event_time(), None);
        node.submit(1, req(0), t(0));
        let cached = node.next_event_time();
        let scanned = node
            .disks()
            .iter()
            .filter_map(|d| d.next_event_time())
            .min();
        assert_eq!(cached, scanned);
        assert!(cached.is_some());
        node.advance_to(t(40_000_000));
        assert_eq!(node.next_event_time(), None);
    }

    #[test]
    fn idle_disks_are_not_touched_per_event() {
        // Regression: event dispatch must only advance disks whose cached
        // next event is due, not every member of the array.
        let submits = 50u64;
        let mut node =
            PoweredArray::new(DiskParams::paper_defaults(), 100, PolicyKind::NoPm).unwrap();
        for i in 0..submits {
            node.submit(0, req(i), t(i * 500_000));
        }
        node.finish(t(submits * 500_000 + 5_000_000));
        assert_eq!(node.drain_completions().len(), submits as usize);

        let busy = node.disks()[0].advance_calls();
        let idle_max = node.disks()[1..]
            .iter()
            .map(|d| d.advance_calls())
            .max()
            .expect("99 idle disks");
        // Each submit (and the final finish) catches every disk up to the
        // current time exactly once; the per-request seek-end and
        // transfer-end events must touch only disk 0. The old scan-based
        // dispatch advanced all 100 disks at each of those events.
        assert!(
            idle_max <= submits + 2,
            "idle disks were advanced {idle_max} times for {submits} submits"
        );
        assert!(
            busy >= idle_max + 2 * submits,
            "busy disk advanced {busy} times vs idle {idle_max}"
        );
    }

    #[test]
    fn trace_attributes_spin_down_to_policy_timer() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            2,
            PolicyKind::simple_spin_down_default(),
        )
        .unwrap();
        node.enable_trace(3);
        node.submit(0, req(0), t(0));
        node.finish(t(300_000_000));
        let events = node.take_trace_events();
        let decisions: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PolicyDecision {
                    node,
                    policy,
                    trigger,
                    action,
                    ..
                } => Some((*node, *policy, *trigger, *action)),
                _ => None,
            })
            .collect();
        // The fixed-timeout policy spins both disks down from its timer.
        assert_eq!(decisions.len(), 2);
        for d in &decisions {
            assert_eq!(*d, (3, "simple", "timer", "spin-down"));
        }
        // Every decision carries the policy's learner-state snapshot; the
        // fixed-timeout policy has no predictor, only a mode label.
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::PolicyDecision {
                mode: Some("fixed-timeout"),
                predicted_idle_us: None,
                ..
            }
        )));
        // Member-disk state transitions ride along in the same stream.
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::DiskState {
                to: "spin-down",
                ..
            }
        )));
    }

    #[test]
    fn node_idle_window_attributed_to_spin_down() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            1,
            PolicyKind::simple_spin_down_default(),
        )
        .unwrap();
        node.enable_trace(0);
        node.submit(0, req(0), t(0));
        // Long gap: the window the second arrival closes saw a spin-down.
        node.submit(0, req(1), t(300_000_000));
        node.finish(t(310_000_000));
        let events = node.take_trace_events();
        let windows: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::NodeIdle {
                    idle_us, action, ..
                } => Some((*idle_us, *action)),
                _ => None,
            })
            .collect();
        assert_eq!(windows.len(), 2, "one summary per closed idle window");
        // Window 1 closed by the t=0 arrival: zero-length, no action.
        assert_eq!(windows[0], (0, "none"));
        // Window 2 spans the long gap and was spun down.
        assert_eq!(windows[1].1, "spin-down");
        assert!(windows[1].0 > 200_000_000);
    }

    #[test]
    fn record_metrics_covers_all_members() {
        let mut node =
            PoweredArray::new(DiskParams::paper_defaults(), 2, PolicyKind::NoPm).unwrap();
        node.submit(0, req(0), t(0));
        node.finish(t(10_000_000));
        let mut reg = MetricsRegistry::new();
        node.record_metrics(&mut reg, 1);
        assert_eq!(reg.get_counter("disk.n1.d0.requests_served"), Some(1));
        assert_eq!(reg.get_counter("disk.n1.d1.requests_served"), Some(0));
        let total = reg.get_gauge("power.n1.total_joules").unwrap();
        assert!((total - node.total_joules()).abs() < 1e-12);
    }

    #[test]
    fn determinism_same_inputs_same_energy() {
        let run = || {
            let mut node = PoweredArray::new(
                DiskParams::paper_defaults(),
                2,
                PolicyKind::history_based_default(),
            )
            .unwrap();
            for i in 0..50u64 {
                node.submit(
                    (i % 2) as usize,
                    req(i),
                    t(i * 3_000_000 + (i % 5) * 100_000),
                );
            }
            node.finish(t(200_000_000));
            node.total_joules()
        };
        assert_eq!(run(), run());
    }
}
