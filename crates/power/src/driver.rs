//! The policy driver: an I/O node's disk array plus its power policy.

use sdds_disk::{CompletedRequest, Disk, DiskParams, DiskRequest};
use simkit::{SimDuration, SimTime};

use crate::policy::{node_idle, PolicyKind, PowerPolicy};

/// One I/O node's disks managed together by a power policy.
///
/// `PoweredArray` interleaves three event sources in timestamp order while
/// simulated time advances: the disks' own phase boundaries (service
/// completions, transition ends), the policy's single pending timer, and
/// request submissions from the caller. It notifies the policy when the
/// *node* becomes idle (no member disk has outstanding work), fires its
/// timers, and lets it react to request arrivals — the I/O-node-level
/// control loop of §II ("if spinning down an I/O node, we spin down all
/// disks attached to it").
///
/// # Example
///
/// ```
/// use sdds_disk::{DiskParams, DiskRequest, RequestKind};
/// use sdds_power::{PolicyKind, PoweredArray};
/// use simkit::{SimDuration, SimTime};
///
/// let mut node = PoweredArray::new(
///     DiskParams::paper_defaults(),
///     2,
///     PolicyKind::staggered_default(),
/// );
/// node.submit(0, DiskRequest::new(0, RequestKind::Read, 0, 8), SimTime::ZERO);
/// node.finish(SimTime::ZERO + SimDuration::from_secs(30));
/// assert_eq!(node.drain_completions().len(), 1);
/// ```
#[derive(Debug)]
pub struct PoweredArray {
    disks: Vec<Disk>,
    policy: Box<dyn PowerPolicy>,
    timer: Option<SimTime>,
    /// Set once the policy has been told about the current no-work period.
    idle_signaled: bool,
    /// When the node last ran out of work (valid while it has none).
    node_idle_since: Option<SimTime>,
    /// Total outstanding requests across member disks.
    outstanding: usize,
}

impl PoweredArray {
    /// Creates an array of `count` identical disks at time zero, managed
    /// by the given policy kind.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(params: DiskParams, count: usize, kind: PolicyKind) -> Self {
        let policy = kind.build(&params);
        Self::with_policy(params, count, policy)
    }

    /// Creates an array managed by an explicit policy object.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn with_policy(params: DiskParams, count: usize, policy: Box<dyn PowerPolicy>) -> Self {
        assert!(count > 0, "a node needs at least one disk");
        PoweredArray {
            disks: (0..count).map(|_| Disk::new(params.clone())).collect(),
            policy,
            timer: None,
            idle_signaled: false,
            node_idle_since: Some(SimTime::ZERO),
            outstanding: 0,
        }
    }

    /// The member disks (read-only).
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The next instant at which this node needs attention (a disk phase
    /// boundary or the policy timer), if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.disks
            .iter()
            .filter_map(|d| d.next_event_time())
            .chain(self.timer)
            .min()
    }

    /// Advances to `t`, firing disk events and policy timers in order.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than any disk's current time.
    pub fn advance_to(&mut self, t: SimTime) {
        loop {
            let disk_next = self
                .disks
                .iter()
                .filter_map(|d| d.next_event_time())
                .min()
                .filter(|&x| x <= t);
            let timer_next = self.timer.filter(|&x| x <= t);
            match (disk_next, timer_next) {
                (None, None) => break,
                (Some(d), None) => self.step_disks(d),
                (None, Some(tm)) => self.fire_timer(tm),
                (Some(d), Some(tm)) => {
                    if d <= tm {
                        self.step_disks(d);
                    } else {
                        self.fire_timer(tm);
                    }
                }
            }
        }
        for disk in &mut self.disks {
            disk.advance_to(t);
        }
        self.refresh_idle_state();
    }

    /// Submits a request to member disk `disk` at `t`, routing the arrival
    /// through the policy.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range or `t` is earlier than the current
    /// time.
    pub fn submit(&mut self, disk: usize, request: DiskRequest, t: SimTime) {
        assert!(disk < self.disks.len(), "disk index {disk} out of range");
        self.advance_to(t);
        let completed_idle = if self.outstanding == 0 {
            self.node_idle_since.map(|s| t.saturating_since(s))
        } else {
            None
        };
        if self.outstanding == 0 {
            // Any pending idle-period action is now moot.
            self.timer = None;
        }
        self.policy
            .on_request_arrival(t, completed_idle, &mut self.disks);
        self.disks[disk].submit(request, t);
        self.outstanding += 1;
        self.idle_signaled = false;
        self.node_idle_since = None;
        self.policy.after_submit(t, &mut self.disks);
    }

    /// Finishes the simulation at `t`.
    pub fn finish(&mut self, t: SimTime) {
        self.advance_to(t);
        for disk in &mut self.disks {
            disk.finish(t);
        }
    }

    /// Removes and returns completions from all member disks as
    /// `(disk_index, completion)` pairs.
    pub fn drain_completions(&mut self) -> Vec<(usize, CompletedRequest)> {
        let mut out = Vec::new();
        for (i, disk) in self.disks.iter_mut().enumerate() {
            for c in disk.drain_completions() {
                out.push((i, c));
            }
        }
        out
    }

    /// Total energy consumed so far, in joules.
    pub fn total_joules(&self) -> f64 {
        self.disks.iter().map(|d| d.energy().total_joules()).sum()
    }

    /// Sum of each disk's completed idle time.
    pub fn total_idle(&self) -> SimDuration {
        self.disks
            .iter()
            .map(|d| d.idle_tracker().total_idle())
            .sum()
    }

    /// Advances all disks exactly to the earliest pending boundary `to`.
    fn step_disks(&mut self, to: SimTime) {
        for disk in &mut self.disks {
            if disk.now() < to || disk.next_event_time() == Some(to) {
                disk.advance_to(to);
            }
        }
        self.refresh_idle_state();
    }

    fn fire_timer(&mut self, at: SimTime) {
        self.timer = None;
        for disk in &mut self.disks {
            if disk.now() < at {
                disk.advance_to(at);
            }
        }
        self.refresh_idle_state();
        self.timer = self.policy.on_timer(at, &mut self.disks);
    }

    /// Tracks node idleness and signals `on_idle_start` exactly once per
    /// no-work period, at the moment every disk is free and settled.
    fn refresh_idle_state(&mut self) {
        self.outstanding = self.disks.iter().map(|d| d.outstanding()).sum();
        if self.outstanding == 0 {
            if self.node_idle_since.is_none() {
                // The period began when the last disk finished.
                let last = self
                    .disks
                    .iter()
                    .map(|d| d.now())
                    .max()
                    .expect("at least one disk");
                self.node_idle_since = Some(last);
            }
            if !self.idle_signaled && node_idle(&self.disks) {
                self.idle_signaled = true;
                let t = self
                    .disks
                    .iter()
                    .map(|d| d.now())
                    .max()
                    .expect("at least one disk");
                let new_timer = self.policy.on_idle_start(t, &mut self.disks);
                if new_timer.is_some() {
                    self.timer = new_timer;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_disk::RequestKind;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn req(id: u64) -> DiskRequest {
        DiskRequest::new(id, RequestKind::Read, (id % 7) * 1_000_000, 64)
    }

    #[test]
    fn no_pm_never_transitions() {
        let mut node = PoweredArray::new(DiskParams::paper_defaults(), 2, PolicyKind::NoPm);
        for i in 0..5 {
            node.submit((i % 2) as usize, req(i), t(i * 2_000_000));
        }
        node.finish(t(60_000_000));
        for d in node.disks() {
            assert_eq!(d.counters().spin_downs, 0);
            assert_eq!(d.counters().rpm_changes, 0);
        }
        assert_eq!(node.drain_completions().len(), 5);
    }

    #[test]
    fn simple_policy_spins_whole_node() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            4,
            PolicyKind::simple_spin_down_default(),
        );
        node.submit(0, req(0), t(0));
        // Long gap: the timeout fires and every member disk spins down.
        node.submit(1, req(1), t(300_000_000));
        node.finish(t(400_000_000));
        for d in node.disks() {
            assert!(
                d.counters().spin_downs >= 1,
                "every member disk should spin down together"
            );
        }
    }

    #[test]
    fn node_idle_waits_for_all_members() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            2,
            PolicyKind::simple_spin_down_default(),
        );
        // Keep disk 0 busy with a large request while disk 1 idles: the
        // idle signal (and thus spin-down) must wait for both.
        node.submit(0, DiskRequest::new(0, RequestKind::Read, 0, 60_000), t(0));
        node.advance_to(t(2_000_000));
        assert_eq!(node.disks()[1].counters().spin_downs, 0);
        // After the big request completes plus the timeout, both spin down.
        node.finish(t(30_000_000));
        assert!(node.disks()[0].counters().spin_downs >= 1);
        assert!(node.disks()[1].counters().spin_downs >= 1);
    }

    #[test]
    fn simple_policy_saves_energy_on_long_idle() {
        let horizon = t(600_000_000); // 10 minutes
        let mut default = PoweredArray::new(DiskParams::paper_single_speed(), 1, PolicyKind::NoPm);
        default.submit(0, req(0), t(0));
        default.finish(horizon);

        let mut simple = PoweredArray::new(
            DiskParams::paper_single_speed(),
            1,
            PolicyKind::simple_spin_down_default(),
        );
        simple.submit(0, req(0), t(0));
        simple.finish(horizon);

        assert!(
            simple.total_joules() < default.total_joules() * 0.6,
            "simple {} J vs default {} J",
            simple.total_joules(),
            default.total_joules()
        );
    }

    #[test]
    fn history_policy_saves_energy_on_medium_idles() {
        // 10 s gaps: far below the ~60 s spin-down break-even but enough
        // for a speed reduction to pay off.
        let params = DiskParams::paper_defaults();
        let gaps: Vec<SimTime> = (0..20).map(|i| t(i * 10_000_000)).collect();

        let mut default = PoweredArray::new(params.clone(), 1, PolicyKind::NoPm);
        for (i, &at) in gaps.iter().enumerate() {
            default.submit(0, req(i as u64), at);
        }
        default.finish(t(210_000_000));

        let mut history = PoweredArray::new(params.clone(), 1, PolicyKind::history_based_default());
        for (i, &at) in gaps.iter().enumerate() {
            history.submit(0, req(i as u64), at);
        }
        history.finish(t(210_000_000));

        assert!(
            history.total_joules() < default.total_joules(),
            "history {} J vs default {} J",
            history.total_joules(),
            default.total_joules()
        );
        assert!(history.disks()[0].counters().rpm_changes > 0);
    }

    #[test]
    fn staggered_policy_descends_and_recovers() {
        let params = DiskParams::paper_defaults();
        let mut node = PoweredArray::new(params.clone(), 1, PolicyKind::staggered_default());
        node.submit(0, req(0), t(0));
        // 30 s idle: plenty of steps to descend.
        node.submit(0, req(1), t(30_000_000));
        node.finish(t(60_000_000));
        let c = node.disks()[0].counters();
        assert!(c.rpm_changes >= 3, "expected a staggered descent");
        assert_eq!(c.requests_served, 2);
    }

    #[test]
    fn idle_signal_fires_once_per_period() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            1,
            PolicyKind::simple_spin_down_default(),
        );
        node.submit(0, req(0), t(0));
        node.finish(t(300_000_000));
        assert_eq!(node.disks()[0].counters().spin_downs, 1);
    }

    #[test]
    fn next_event_time_covers_timer() {
        let mut node = PoweredArray::new(
            DiskParams::paper_single_speed(),
            1,
            PolicyKind::simple_spin_down_default(),
        );
        node.submit(0, req(0), t(0));
        node.advance_to(t(1_000_000));
        let next = node.next_event_time().expect("timer should be pending");
        assert!(next > t(1_000_000));
    }

    #[test]
    fn determinism_same_inputs_same_energy() {
        let run = || {
            let mut node = PoweredArray::new(
                DiskParams::paper_defaults(),
                2,
                PolicyKind::history_based_default(),
            );
            for i in 0..50u64 {
                node.submit(
                    (i % 2) as usize,
                    req(i),
                    t(i * 3_000_000 + (i % 5) * 100_000),
                );
            }
            node.finish(t(200_000_000));
            node.total_joules()
        };
        assert_eq!(run(), run());
    }
}
