//! Coarse per-disk power/energy accounting for sharded datacenter scenes.
//!
//! The sharded scale scenes simulate thousands of disks, so they use a
//! deliberately coarser model than [`crate::PoweredArray`]: each disk is a
//! busy-until server with a simple fixed-timeout spin-down policy (the
//! paper's §II *Simple* scheme), and energy is integrated lazily — the gap
//! between two requests is classified into idle / standby time when the
//! later request arrives, so accounting costs O(1) per request regardless
//! of how long the disk sat quiet.
//!
//! All arithmetic is sequential per disk bank, so totals are bitwise
//! deterministic and independent of how the owning components are
//! partitioned across shards.

use sdds_disk::DiskParams;
use simkit::{SimDuration, SimTime};

/// Wattages and timings for the scene power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenePowerParams {
    /// Power while serving a request (W).
    pub active_w: f64,
    /// Power while spinning but idle (W).
    pub idle_w: f64,
    /// Power while spun down (W).
    pub standby_w: f64,
    /// Power during a spin-up (W).
    pub spin_up_w: f64,
    /// Latency of a spin-up; a request hitting a spun-down disk pays it.
    pub spin_up: SimDuration,
    /// Idle time after which the disk spins down.
    pub idle_timeout: SimDuration,
}

impl ScenePowerParams {
    /// Derives scene wattages from full disk parameters.
    #[must_use]
    pub fn from_disk(params: &DiskParams, idle_timeout: SimDuration) -> Self {
        ScenePowerParams {
            active_w: params.active_power,
            idle_w: params.idle_power,
            standby_w: params.standby_power,
            spin_up_w: params.spin_up_power,
            spin_up: params.spin_up_time,
            idle_timeout,
        }
    }

    /// The paper-default disk with the given spin-down timeout.
    #[must_use]
    pub fn paper_scene(idle_timeout: SimDuration) -> Self {
        Self::from_disk(&DiskParams::paper_defaults(), idle_timeout)
    }
}

/// One disk's server state.
#[derive(Debug, Clone, Copy, Default)]
struct DiskState {
    /// When the disk finishes its current work queue.
    free_at: SimTime,
    /// The disk is pinned spinning until this time: gaps inside the
    /// hold charge idle power and never transition to standby. Used by
    /// the rebuild engine so the spin-down policy cannot power off a
    /// disk that background reconstruction is about to touch again.
    hold_until: SimTime,
}

/// Which accounting bucket subsequent active joules land in.
///
/// The rebuild scenario must split active energy between foreground
/// client traffic and background reconstruction and still reconcile the
/// split against the headline exactly; tagging at the accounting layer
/// makes the headline the literal sum of the two buckets, so the
/// reconciliation is exact by construction rather than within an
/// epsilon of re-summed floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActiveTag {
    /// Foreground client traffic (the default).
    #[default]
    Foreground,
    /// Background reconstruction traffic.
    Rebuild,
}

/// The latency split one served request experienced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Completion time (arrival + queue + spin-up + service).
    pub done: SimTime,
    /// Time spent waiting behind earlier work on the disk.
    pub queue: SimDuration,
    /// Spin-up delay paid because the disk had spun down.
    pub spin_up: SimDuration,
    /// Pure service time of the request itself.
    pub service: SimDuration,
}

/// Energy totals in joules, split by residency.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SceneEnergy {
    /// Joules spent actively serving requests.
    pub active_j: f64,
    /// Joules spent spinning idle.
    pub idle_j: f64,
    /// Joules spent spun down.
    pub standby_j: f64,
    /// Joules spent spinning up.
    pub spin_up_j: f64,
}

impl SceneEnergy {
    /// Total joules across all residencies.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.active_j + self.idle_j + self.standby_j + self.spin_up_j
    }
}

/// A bank of busy-until disks with lazy timeout-based energy accounting.
#[derive(Debug, Clone)]
pub struct ScenePower {
    params: ScenePowerParams,
    disks: Vec<DiskState>,
    /// Idle/standby/spin-up joules; the `active_j` field stays zero and
    /// is composed from `active` when the totals are read.
    energy: SceneEnergy,
    /// Active joules per [`ActiveTag`] bucket.
    active: [f64; 2],
    /// Bucket that the next serve's active joules land in.
    tag: ActiveTag,
    /// Requests served.
    pub requests: u64,
    /// Spin-down events (always paired with a later spin-up or final gap).
    pub spin_downs: u64,
    /// Spin-up events charged to arriving requests.
    pub spin_ups: u64,
}

impl ScenePower {
    /// A bank of `disks` disks, all spun up and free at time zero.
    #[must_use]
    pub fn new(params: ScenePowerParams, disks: usize) -> Self {
        ScenePower {
            params,
            disks: vec![DiskState::default(); disks],
            energy: SceneEnergy::default(),
            active: [0.0; 2],
            tag: ActiveTag::Foreground,
            requests: 0,
            spin_downs: 0,
            spin_ups: 0,
        }
    }

    /// Number of disks in the bank.
    #[must_use]
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Pins `disk` spinning until at least `until`: any quiet gap that
    /// overlaps the hold charges idle power for the overlap and the
    /// spin-down timeout only starts counting after the hold expires.
    /// Holds extend (never shrink) an existing hold, so overlapping
    /// callers compose. This is the rebuild-aware idle forecast: the
    /// rebuild engine holds its source and spare so the energy model
    /// never spins a disk down mid-reconstruction.
    pub fn hold(&mut self, disk: usize, until: SimTime) {
        let n = self.disks.len();
        if n == 0 {
            return;
        }
        let slot = &mut self.disks[disk % n];
        slot.hold_until = slot.hold_until.max(until);
    }

    /// Charges the gap `[from, to)` on disk `disk` to idle or
    /// idle+standby, honouring any hold on the disk. Returns the
    /// spin-up delay to add if a request arrives at `to`.
    fn charge_gap(&mut self, disk: usize, from: SimTime, to: SimTime, wake: bool) -> SimDuration {
        // The held prefix of the gap is pure idle: the disk is pinned
        // spinning, so the timeout countdown starts at the hold's end.
        let hold = self.disks[disk].hold_until.min(to).max(from);
        let pinned = hold.saturating_since(from);
        if !pinned.is_zero() {
            self.energy.idle_j += pinned.as_secs_f64() * self.params.idle_w;
        }
        let from = hold;
        let gap = to.saturating_since(from);
        if gap.is_zero() {
            return SimDuration::from_micros(0);
        }
        if gap <= self.params.idle_timeout {
            self.energy.idle_j += gap.as_secs_f64() * self.params.idle_w;
            return SimDuration::from_micros(0);
        }
        self.energy.idle_j += self.params.idle_timeout.as_secs_f64() * self.params.idle_w;
        let standby = gap.saturating_sub(self.params.idle_timeout);
        self.energy.standby_j += standby.as_secs_f64() * self.params.standby_w;
        self.spin_downs += 1;
        if wake {
            self.spin_ups += 1;
            self.energy.spin_up_j += self.params.spin_up.as_secs_f64() * self.params.spin_up_w;
            self.params.spin_up
        } else {
            SimDuration::from_micros(0)
        }
    }

    /// Serves `work` on disk `disk` for a request arriving at `at`,
    /// returning the completion time (including any spin-up delay when
    /// the disk had spun down).
    pub fn serve(&mut self, disk: usize, at: SimTime, work: SimDuration) -> SimTime {
        self.serve_traced(disk, at, work).done
    }

    /// Like [`Self::serve`], but also reports the latency split the
    /// request experienced (queue wait, spin-up, service) so callers can
    /// build exact tail-latency decompositions.
    pub fn serve_traced(&mut self, disk: usize, at: SimTime, work: SimDuration) -> ServeOutcome {
        let n = self.disks.len();
        if n == 0 {
            return ServeOutcome {
                done: at + work,
                queue: SimDuration::ZERO,
                spin_up: SimDuration::ZERO,
                service: work,
            };
        }
        let idx = disk % n;
        let free_at = self.disks[idx].free_at;
        let start = at.max(free_at);
        let mut delay = SimDuration::from_micros(0);
        if free_at < start {
            delay = self.charge_gap(idx, free_at, start, true);
        }
        let begin = start + delay;
        let done = begin + work;
        self.active[self.tag as usize] += work.as_secs_f64() * self.params.active_w;
        self.disks[idx].free_at = done;
        self.requests += 1;
        ServeOutcome {
            done,
            queue: start.saturating_since(at),
            spin_up: delay,
            service: work,
        }
    }

    /// The wait a request arriving on `disk` at `at` would pay before
    /// its own service starts: time queued behind the disk's current
    /// work (including any in-flight spin-up), or the spin-up it would
    /// trigger on a powered-down member. Replica routers use this to
    /// steer reads toward spinning, unloaded members — the model is
    /// software-directed, so the client is allowed to know the disk
    /// state it itself determines.
    #[must_use]
    pub fn arrival_cost(&self, disk: usize, at: SimTime) -> SimDuration {
        let n = self.disks.len();
        if n == 0 {
            return SimDuration::ZERO;
        }
        let s = &self.disks[disk % n];
        if s.free_at >= at {
            return s.free_at.saturating_since(at);
        }
        let quiet_from = s.free_at.max(s.hold_until);
        if at.saturating_since(quiet_from) > self.params.idle_timeout {
            self.params.spin_up
        } else {
            SimDuration::ZERO
        }
    }

    /// Selects the bucket that subsequent serves' active joules land
    /// in. Idle/standby/spin-up joules are residency costs of the whole
    /// bank and stay untagged.
    pub fn set_active_tag(&mut self, tag: ActiveTag) {
        self.tag = tag;
    }

    /// Active joules per bucket as `(foreground, rebuild)`. Their sum is
    /// exactly [`SceneEnergy::active_j`] — same accumulators, one add.
    #[must_use]
    pub fn active_split(&self) -> (f64, f64) {
        (
            self.active[ActiveTag::Foreground as usize],
            self.active[ActiveTag::Rebuild as usize],
        )
    }

    /// Permanently removes `disk` from the bank at `at`: its trailing
    /// quiet gap up to `at` is charged (without a wake-up) and it accrues
    /// nothing afterwards — a failed member draws no power. The disk must
    /// not be served or held after retirement.
    pub fn retire(&mut self, disk: usize, at: SimTime) {
        let n = self.disks.len();
        if n == 0 {
            return;
        }
        let idx = disk % n;
        let free_at = self.disks[idx].free_at;
        if free_at < at {
            self.charge_gap(idx, free_at, at, false);
        }
        self.disks[idx].free_at = SimTime::MAX;
    }

    /// Closes the books at `end`: trailing gaps on every disk are charged
    /// (without a wake-up). Call once when the scene finishes.
    pub fn finish(&mut self, end: SimTime) {
        for i in 0..self.disks.len() {
            let free_at = self.disks[i].free_at;
            if free_at < end {
                self.charge_gap(i, free_at, end, false);
                self.disks[i].free_at = end;
            }
        }
    }

    /// Energy totals accumulated so far.
    #[must_use]
    pub fn energy(&self) -> SceneEnergy {
        let mut out = self.energy;
        out.active_j = self.active[0] + self.active[1];
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenePowerParams {
        ScenePowerParams {
            active_w: 10.0,
            idle_w: 5.0,
            standby_w: 1.0,
            spin_up_w: 20.0,
            spin_up: SimDuration::from_secs(2),
            idle_timeout: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn active_energy_only_when_busy_back_to_back() {
        let mut p = ScenePower::new(params(), 1);
        let d1 = p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        let d2 = p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(d1, SimTime::from_micros(1_000_000));
        assert_eq!(d2, SimTime::from_micros(2_000_000));
        let e = p.energy();
        assert_eq!(e.active_j, 20.0);
        assert_eq!(e.idle_j, 0.0);
        assert_eq!(e.standby_j, 0.0);
    }

    #[test]
    fn short_gap_is_idle() {
        let mut p = ScenePower::new(params(), 1);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        // 0.5 s gap, below the 1 s timeout: all idle, no spin-up delay.
        let done = p.serve(
            0,
            SimTime::from_micros(1_500_000),
            SimDuration::from_secs(1),
        );
        assert_eq!(done, SimTime::from_micros(2_500_000));
        let e = p.energy();
        assert!((e.idle_j - 2.5).abs() < 1e-9);
        assert_eq!(p.spin_ups, 0);
    }

    #[test]
    fn long_gap_spins_down_and_pays_spin_up() {
        let mut p = ScenePower::new(params(), 1);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        // 10 s gap: 1 s idle + 9 s standby, then a 2 s spin-up delay.
        let done = p.serve(
            0,
            SimTime::from_micros(11_000_000),
            SimDuration::from_secs(1),
        );
        assert_eq!(done, SimTime::from_micros(14_000_000));
        let e = p.energy();
        assert!((e.idle_j - 5.0).abs() < 1e-9);
        assert!((e.standby_j - 9.0).abs() < 1e-9);
        assert!((e.spin_up_j - 40.0).abs() < 1e-9);
        assert_eq!(p.spin_ups, 1);
        assert_eq!(p.spin_downs, 1);
    }

    #[test]
    fn hold_pins_disk_spinning_through_gap() {
        let mut p = ScenePower::new(params(), 1);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        // A 10 s gap would normally spin down after the 1 s timeout, but
        // a hold covering the whole gap pins the disk spinning: all idle,
        // no standby, no spin-up delay on the next request.
        p.hold(0, SimTime::from_micros(11_000_000));
        let done = p.serve(
            0,
            SimTime::from_micros(11_000_000),
            SimDuration::from_secs(1),
        );
        assert_eq!(done, SimTime::from_micros(12_000_000));
        let e = p.energy();
        assert!((e.idle_j - 50.0).abs() < 1e-9, "10 s x 5 W idle");
        assert_eq!(e.standby_j, 0.0);
        assert_eq!(p.spin_ups, 0);
        assert_eq!(p.spin_downs, 0);
    }

    #[test]
    fn hold_defers_the_timeout_countdown() {
        let mut p = ScenePower::new(params(), 1);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        // Hold covers [1 s, 5 s); the 10 s quiet stretch ends at 11 s, so
        // the timeout countdown starts at 5 s: 4 s held idle + 1 s
        // timeout idle + 5 s standby, then a wake.
        p.hold(0, SimTime::from_micros(5_000_000));
        let done = p.serve(
            0,
            SimTime::from_micros(11_000_000),
            SimDuration::from_secs(1),
        );
        assert_eq!(done, SimTime::from_micros(14_000_000));
        let e = p.energy();
        assert!((e.idle_j - 25.0).abs() < 1e-9, "(4 + 1) s x 5 W idle");
        assert!((e.standby_j - 5.0).abs() < 1e-9, "5 s x 1 W standby");
        assert_eq!(p.spin_ups, 1);
    }

    #[test]
    fn holds_extend_but_never_shrink() {
        let mut p = ScenePower::new(params(), 1);
        p.hold(0, SimTime::from_micros(9_000_000));
        p.hold(0, SimTime::from_micros(2_000_000));
        p.serve(
            0,
            SimTime::from_micros(9_000_000),
            SimDuration::from_secs(1),
        );
        let e = p.energy();
        // The later, shorter hold must not cut the 9 s pin: all idle.
        assert!((e.idle_j - 45.0).abs() < 1e-9);
        assert_eq!(e.standby_j, 0.0);
        assert_eq!(p.spin_downs, 0);
    }

    #[test]
    fn serve_traced_decomposes_latency() {
        let mut p = ScenePower::new(params(), 1);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        // Arrives at 0.5 s: waits 0.5 s behind the first request.
        let o = p.serve_traced(0, SimTime::from_micros(500_000), SimDuration::from_secs(2));
        assert_eq!(o.queue, SimDuration::from_micros(500_000));
        assert_eq!(o.spin_up, SimDuration::ZERO);
        assert_eq!(o.service, SimDuration::from_secs(2));
        assert_eq!(o.done, SimTime::from_micros(3_000_000));
        // A request after a long gap pays the spin-up in its split.
        let o = p.serve_traced(
            0,
            SimTime::from_micros(33_000_000),
            SimDuration::from_secs(1),
        );
        assert_eq!(o.queue, SimDuration::ZERO);
        assert_eq!(o.spin_up, SimDuration::from_secs(2));
        assert_eq!(
            o.done.saturating_since(SimTime::from_micros(33_000_000)),
            o.queue + o.spin_up + o.service
        );
    }

    #[test]
    fn active_split_sums_exactly_to_headline_active() {
        let mut p = ScenePower::new(params(), 2);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        p.set_active_tag(ActiveTag::Rebuild);
        p.serve(1, SimTime::ZERO, SimDuration::from_secs(3));
        p.set_active_tag(ActiveTag::Foreground);
        p.serve(
            0,
            SimTime::from_micros(1_000_000),
            SimDuration::from_secs(2),
        );
        let (fg, rb) = p.active_split();
        assert_eq!(fg, 30.0);
        assert_eq!(rb, 30.0);
        // Exact, not epsilon: the headline is the literal sum.
        assert_eq!(p.energy().active_j, fg + rb);
    }

    #[test]
    fn retired_disk_accrues_nothing_after_retirement() {
        let mut p = ScenePower::new(params(), 2);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        p.serve(1, SimTime::ZERO, SimDuration::from_secs(1));
        // Disk 1 fails at 4 s: 1 s idle + 2 s standby, then nothing.
        p.retire(1, SimTime::from_micros(4_000_000));
        p.finish(SimTime::from_micros(100_000_000));
        let e = p.energy();
        // Disk 0 contributes 1 s idle + 98 s standby after its serve.
        assert!((e.idle_j - 10.0).abs() < 1e-9);
        assert!((e.standby_j - 100.0).abs() < 1e-9);
    }

    #[test]
    fn finish_charges_trailing_gap_without_wake() {
        let mut p = ScenePower::new(params(), 2);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        p.finish(SimTime::from_micros(4_000_000));
        let e = p.energy();
        // Disk 0: 1 s idle + 2 s standby; disk 1: 1 s idle + 3 s standby.
        assert!((e.idle_j - 10.0).abs() < 1e-9);
        assert!((e.standby_j - 5.0).abs() < 1e-9);
        assert_eq!(p.spin_ups, 0);
        assert_eq!(p.spin_downs, 2);
        assert!((e.total() - (10.0 + 10.0 + 5.0)).abs() < 1e-9);
    }
}
