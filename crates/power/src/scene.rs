//! Coarse per-disk power/energy accounting for sharded datacenter scenes.
//!
//! The sharded scale scenes simulate thousands of disks, so they use a
//! deliberately coarser model than [`crate::PoweredArray`]: each disk is a
//! busy-until server with a simple fixed-timeout spin-down policy (the
//! paper's §II *Simple* scheme), and energy is integrated lazily — the gap
//! between two requests is classified into idle / standby time when the
//! later request arrives, so accounting costs O(1) per request regardless
//! of how long the disk sat quiet.
//!
//! All arithmetic is sequential per disk bank, so totals are bitwise
//! deterministic and independent of how the owning components are
//! partitioned across shards.

use sdds_disk::DiskParams;
use simkit::{SimDuration, SimTime};

/// Wattages and timings for the scene power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenePowerParams {
    /// Power while serving a request (W).
    pub active_w: f64,
    /// Power while spinning but idle (W).
    pub idle_w: f64,
    /// Power while spun down (W).
    pub standby_w: f64,
    /// Power during a spin-up (W).
    pub spin_up_w: f64,
    /// Latency of a spin-up; a request hitting a spun-down disk pays it.
    pub spin_up: SimDuration,
    /// Idle time after which the disk spins down.
    pub idle_timeout: SimDuration,
}

impl ScenePowerParams {
    /// Derives scene wattages from full disk parameters.
    #[must_use]
    pub fn from_disk(params: &DiskParams, idle_timeout: SimDuration) -> Self {
        ScenePowerParams {
            active_w: params.active_power,
            idle_w: params.idle_power,
            standby_w: params.standby_power,
            spin_up_w: params.spin_up_power,
            spin_up: params.spin_up_time,
            idle_timeout,
        }
    }

    /// The paper-default disk with the given spin-down timeout.
    #[must_use]
    pub fn paper_scene(idle_timeout: SimDuration) -> Self {
        Self::from_disk(&DiskParams::paper_defaults(), idle_timeout)
    }
}

/// One disk's server state.
#[derive(Debug, Clone, Copy, Default)]
struct DiskState {
    /// When the disk finishes its current work queue.
    free_at: SimTime,
}

/// Energy totals in joules, split by residency.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SceneEnergy {
    /// Joules spent actively serving requests.
    pub active_j: f64,
    /// Joules spent spinning idle.
    pub idle_j: f64,
    /// Joules spent spun down.
    pub standby_j: f64,
    /// Joules spent spinning up.
    pub spin_up_j: f64,
}

impl SceneEnergy {
    /// Total joules across all residencies.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.active_j + self.idle_j + self.standby_j + self.spin_up_j
    }
}

/// A bank of busy-until disks with lazy timeout-based energy accounting.
#[derive(Debug, Clone)]
pub struct ScenePower {
    params: ScenePowerParams,
    disks: Vec<DiskState>,
    energy: SceneEnergy,
    /// Requests served.
    pub requests: u64,
    /// Spin-down events (always paired with a later spin-up or final gap).
    pub spin_downs: u64,
    /// Spin-up events charged to arriving requests.
    pub spin_ups: u64,
}

impl ScenePower {
    /// A bank of `disks` disks, all spun up and free at time zero.
    #[must_use]
    pub fn new(params: ScenePowerParams, disks: usize) -> Self {
        ScenePower {
            params,
            disks: vec![DiskState::default(); disks],
            energy: SceneEnergy::default(),
            requests: 0,
            spin_downs: 0,
            spin_ups: 0,
        }
    }

    /// Number of disks in the bank.
    #[must_use]
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Charges the gap `[from, to)` on one disk to idle or idle+standby.
    /// Returns the spin-up delay to add if a request arrives at `to`.
    fn charge_gap(&mut self, from: SimTime, to: SimTime, wake: bool) -> SimDuration {
        let gap = to.saturating_since(from);
        if gap.is_zero() {
            return SimDuration::from_micros(0);
        }
        if gap <= self.params.idle_timeout {
            self.energy.idle_j += gap.as_secs_f64() * self.params.idle_w;
            return SimDuration::from_micros(0);
        }
        self.energy.idle_j += self.params.idle_timeout.as_secs_f64() * self.params.idle_w;
        let standby = gap.saturating_sub(self.params.idle_timeout);
        self.energy.standby_j += standby.as_secs_f64() * self.params.standby_w;
        self.spin_downs += 1;
        if wake {
            self.spin_ups += 1;
            self.energy.spin_up_j += self.params.spin_up.as_secs_f64() * self.params.spin_up_w;
            self.params.spin_up
        } else {
            SimDuration::from_micros(0)
        }
    }

    /// Serves `work` on disk `disk` for a request arriving at `at`,
    /// returning the completion time (including any spin-up delay when
    /// the disk had spun down).
    pub fn serve(&mut self, disk: usize, at: SimTime, work: SimDuration) -> SimTime {
        let n = self.disks.len();
        if n == 0 {
            return at + work;
        }
        let free_at = self.disks[disk % n].free_at;
        let start = at.max(free_at);
        let mut delay = SimDuration::from_micros(0);
        if free_at < start {
            delay = self.charge_gap(free_at, start, true);
        }
        let begin = start + delay;
        let done = begin + work;
        self.energy.active_j += work.as_secs_f64() * self.params.active_w;
        self.disks[disk % n].free_at = done;
        self.requests += 1;
        done
    }

    /// Closes the books at `end`: trailing gaps on every disk are charged
    /// (without a wake-up). Call once when the scene finishes.
    pub fn finish(&mut self, end: SimTime) {
        for i in 0..self.disks.len() {
            let free_at = self.disks[i].free_at;
            if free_at < end {
                self.charge_gap(free_at, end, false);
                self.disks[i].free_at = end;
            }
        }
    }

    /// Energy totals accumulated so far.
    #[must_use]
    pub fn energy(&self) -> SceneEnergy {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenePowerParams {
        ScenePowerParams {
            active_w: 10.0,
            idle_w: 5.0,
            standby_w: 1.0,
            spin_up_w: 20.0,
            spin_up: SimDuration::from_secs(2),
            idle_timeout: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn active_energy_only_when_busy_back_to_back() {
        let mut p = ScenePower::new(params(), 1);
        let d1 = p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        let d2 = p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(d1, SimTime::from_micros(1_000_000));
        assert_eq!(d2, SimTime::from_micros(2_000_000));
        let e = p.energy();
        assert_eq!(e.active_j, 20.0);
        assert_eq!(e.idle_j, 0.0);
        assert_eq!(e.standby_j, 0.0);
    }

    #[test]
    fn short_gap_is_idle() {
        let mut p = ScenePower::new(params(), 1);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        // 0.5 s gap, below the 1 s timeout: all idle, no spin-up delay.
        let done = p.serve(
            0,
            SimTime::from_micros(1_500_000),
            SimDuration::from_secs(1),
        );
        assert_eq!(done, SimTime::from_micros(2_500_000));
        let e = p.energy();
        assert!((e.idle_j - 2.5).abs() < 1e-9);
        assert_eq!(p.spin_ups, 0);
    }

    #[test]
    fn long_gap_spins_down_and_pays_spin_up() {
        let mut p = ScenePower::new(params(), 1);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        // 10 s gap: 1 s idle + 9 s standby, then a 2 s spin-up delay.
        let done = p.serve(
            0,
            SimTime::from_micros(11_000_000),
            SimDuration::from_secs(1),
        );
        assert_eq!(done, SimTime::from_micros(14_000_000));
        let e = p.energy();
        assert!((e.idle_j - 5.0).abs() < 1e-9);
        assert!((e.standby_j - 9.0).abs() < 1e-9);
        assert!((e.spin_up_j - 40.0).abs() < 1e-9);
        assert_eq!(p.spin_ups, 1);
        assert_eq!(p.spin_downs, 1);
    }

    #[test]
    fn finish_charges_trailing_gap_without_wake() {
        let mut p = ScenePower::new(params(), 2);
        p.serve(0, SimTime::ZERO, SimDuration::from_secs(1));
        p.finish(SimTime::from_micros(4_000_000));
        let e = p.energy();
        // Disk 0: 1 s idle + 2 s standby; disk 1: 1 s idle + 3 s standby.
        assert!((e.idle_j - 10.0).abs() < 1e-9);
        assert!((e.standby_j - 5.0).abs() < 1e-9);
        assert_eq!(p.spin_ups, 0);
        assert_eq!(p.spin_downs, 2);
        assert!((e.total() - (10.0 + 10.0 + 5.0)).abs() < 1e-9);
    }
}
