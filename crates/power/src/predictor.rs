//! Idle-period length prediction.

use simkit::SimDuration;

/// Predicts the length of the next idle period from the lengths of recent
/// ones.
///
/// The paper's prediction-based and history-based strategies "assume that
/// successive idle periods exhibit similar behavior as far as their
/// duration is concerned" (§II). This predictor generalizes the last-value
/// assumption to an exponentially weighted moving average: with
/// `alpha = 1.0` it degenerates to pure last-value prediction; smaller
/// values smooth over noise.
///
/// # Example
///
/// ```
/// use sdds_power::IdlePredictor;
/// use simkit::SimDuration;
///
/// let mut p = IdlePredictor::new(1.0);
/// assert_eq!(p.predict(), None); // no history yet
/// p.observe(SimDuration::from_millis(40));
/// assert_eq!(p.predict(), Some(SimDuration::from_millis(40)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IdlePredictor {
    alpha: f64,
    estimate_us: Option<f64>,
    observations: u64,
}

impl IdlePredictor {
    /// Creates a predictor with EWMA weight `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        IdlePredictor {
            alpha,
            estimate_us: None,
            observations: 0,
        }
    }

    /// Feeds the measured length of a completed idle period.
    pub fn observe(&mut self, length: SimDuration) {
        let x = length.as_micros() as f64;
        self.estimate_us = Some(match self.estimate_us {
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
            None => x,
        });
        self.observations += 1;
    }

    /// The predicted length of the next idle period, or `None` before any
    /// observation.
    pub fn predict(&self) -> Option<SimDuration> {
        self.estimate_us
            .map(|us| SimDuration::from_micros(us.round() as u64))
    }

    /// Number of idle periods observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn last_value_mode() {
        let mut p = IdlePredictor::new(1.0);
        p.observe(ms(10));
        p.observe(ms(30));
        assert_eq!(p.predict(), Some(ms(30)));
        assert_eq!(p.observations(), 2);
    }

    #[test]
    fn ewma_smooths() {
        let mut p = IdlePredictor::new(0.5);
        p.observe(ms(100));
        p.observe(ms(0)); // a zero-length outlier
        let predicted = p.predict().unwrap();
        assert_eq!(predicted, ms(50));
    }

    #[test]
    fn converges_to_stable_input() {
        let mut p = IdlePredictor::new(0.3);
        for _ in 0..100 {
            p.observe(ms(75));
        }
        let predicted = p.predict().unwrap();
        assert!((predicted.as_millis_f64() - 75.0).abs() < 0.5);
    }

    #[test]
    fn empty_predicts_none() {
        assert_eq!(IdlePredictor::new(0.5).predict(), None);
    }

    #[test]
    #[should_panic(expected = "EWMA alpha")]
    fn zero_alpha_panics() {
        let _ = IdlePredictor::new(0.0);
    }

    #[test]
    #[should_panic(expected = "EWMA alpha")]
    fn large_alpha_panics() {
        let _ = IdlePredictor::new(1.5);
    }
}
