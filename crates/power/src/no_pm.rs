//! The no-op policy (the paper's Default Scheme).

use sdds_disk::Disk;
use simkit::{SimDuration, SimTime};

use crate::policy::PowerPolicy;

/// No power management: the disk idles at full speed forever.
///
/// Every energy and performance figure in the paper is normalized against
/// this scheme (Table III gives its absolute values).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPm;

impl NoPm {
    /// Creates the policy.
    pub fn new() -> Self {
        NoPm
    }
}

impl PowerPolicy for NoPm {
    fn name(&self) -> &'static str {
        "default"
    }

    fn on_idle_start(&mut self, _t: SimTime, _disks: &mut [Disk]) -> Option<SimTime> {
        None
    }

    fn on_timer(&mut self, _t: SimTime, _disks: &mut [Disk]) -> Option<SimTime> {
        None
    }

    fn on_request_arrival(
        &mut self,
        _t: SimTime,
        _completed_idle: Option<SimDuration>,
        _disks: &mut [Disk],
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_disk::DiskParams;

    #[test]
    fn does_nothing() {
        let mut disks = vec![Disk::new(DiskParams::paper_defaults()).unwrap()];
        let mut p = NoPm::new();
        assert_eq!(p.on_idle_start(SimTime::ZERO, &mut disks), None);
        assert_eq!(p.on_timer(SimTime::ZERO, &mut disks), None);
        p.on_request_arrival(SimTime::ZERO, None, &mut disks);
        assert_eq!(disks[0].counters().spin_downs, 0);
        assert_eq!(disks[0].counters().rpm_changes, 0);
        assert_eq!(p.name(), "default");
    }
}
