//! The no-op policy (the paper's Default Scheme).

use sdds_disk::Disk;

use crate::decide::{Decision, EnergyPolicy, PolicyEvent};

/// No power management: the disk idles at full speed forever.
///
/// Every energy and performance figure in the paper is normalized against
/// this scheme (Table III gives its absolute values).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPm;

impl NoPm {
    /// Creates the policy.
    pub fn new() -> Self {
        NoPm
    }
}

impl EnergyPolicy for NoPm {
    fn name(&self) -> &'static str {
        "default"
    }

    fn decide(&mut self, event: PolicyEvent, _disks: &[Disk], out: &mut Decision) {
        // Never arms a timer, but a stray fired timer must not stay armed.
        if matches!(event, PolicyEvent::Timer { .. }) {
            out.clear_timer();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::drive;
    use sdds_disk::DiskParams;
    use simkit::SimTime;

    #[test]
    fn does_nothing() {
        let mut disks = vec![Disk::new(DiskParams::paper_defaults()).unwrap()];
        let mut p = NoPm::new();
        assert_eq!(
            drive(
                &mut p,
                PolicyEvent::IdleStart { t: SimTime::ZERO },
                &mut disks
            ),
            None
        );
        assert_eq!(
            drive(&mut p, PolicyEvent::Timer { t: SimTime::ZERO }, &mut disks),
            None
        );
        drive(
            &mut p,
            PolicyEvent::RequestArrival {
                t: SimTime::ZERO,
                completed_idle: None,
            },
            &mut disks,
        );
        assert_eq!(disks[0].counters().spin_downs, 0);
        assert_eq!(disks[0].counters().rpm_changes, 0);
        assert_eq!(p.name(), "default");
    }
}
