//! Energy break-even analysis for power-state decisions.
//!
//! Given a predicted idle length, these functions compare the energy of
//! staying at the current speed against transitioning to a lower-power
//! configuration (standby or a slower RPM level) and returning to full
//! speed at the end of the period. They encode the quadratic spindle model
//! (Eq. 1 of the paper) through [`SpindlePowerModel`].

use sdds_disk::{DiskParams, Rpm, SpindlePowerModel};
use simkit::SimDuration;

/// Energy (joules) to change speed from `from` to `to`, including zero for
/// a no-op change.
fn change_energy(params: &DiskParams, model: &SpindlePowerModel, from: Rpm, to: Rpm) -> f64 {
    let t = params.rpm_change_time(from, to).as_secs_f64();
    let w = if to.get() >= from.get() {
        model.accelerate_watts(from, to)
    } else {
        model.decelerate_watts()
    };
    w * t
}

/// Energy of idling at `rpm` for the whole period `idle` and then ramping
/// to full speed (the reference the alternatives are compared against
/// always ends the period at full speed, ready to serve).
pub fn stay_energy(
    params: &DiskParams,
    model: &SpindlePowerModel,
    current: Rpm,
    idle: SimDuration,
) -> f64 {
    let ramp = params.rpm_change_time(current, params.max_rpm);
    let level_time = idle.saturating_sub(ramp);
    model.idle_watts(current) * level_time.as_secs_f64()
        + change_energy(params, model, current, params.max_rpm)
}

/// Energy of moving from `current` to `level`, idling there, and ramping to
/// full speed before the period ends. Returns `None` when the period is too
/// short to fit both transitions.
pub fn level_energy(
    params: &DiskParams,
    model: &SpindlePowerModel,
    current: Rpm,
    level: Rpm,
    idle: SimDuration,
) -> Option<f64> {
    let t_go = params.rpm_change_time(current, level);
    let t_back = params.rpm_change_time(level, params.max_rpm);
    let transitions = t_go + t_back;
    if idle < transitions {
        return None;
    }
    let dwell = idle - transitions;
    Some(
        change_energy(params, model, current, level)
            + model.idle_watts(level) * dwell.as_secs_f64()
            + change_energy(params, model, level, params.max_rpm),
    )
}

/// Energy of spinning down to standby, dwelling there, and spinning back up
/// before the period ends. Returns `None` when the period cannot fit the
/// spin-down plus spin-up.
pub fn standby_energy(
    params: &DiskParams,
    model: &SpindlePowerModel,
    idle: SimDuration,
) -> Option<f64> {
    let transitions = params.spin_down_time + params.spin_up_time;
    if idle < transitions {
        return None;
    }
    let dwell = idle - transitions;
    Some(
        model.decelerate_watts() * params.spin_down_time.as_secs_f64()
            + model.standby_watts() * dwell.as_secs_f64()
            + params.spin_up_power * params.spin_up_time.as_secs_f64(),
    )
}

/// Returns `true` if spinning down for a predicted idle period of `idle`
/// saves energy versus idling at `current`.
pub fn spin_down_pays_off(
    params: &DiskParams,
    model: &SpindlePowerModel,
    current: Rpm,
    idle: SimDuration,
) -> bool {
    match standby_energy(params, model, idle) {
        Some(e_sleep) => e_sleep < stay_energy(params, model, current, idle),
        None => false,
    }
}

/// The RPM level minimizing energy over a predicted idle period of `idle`,
/// starting from `current` and required to end the period at full speed.
///
/// Returns `current` itself when no alternative level is both feasible and
/// cheaper (so callers can compare against the current speed to decide
/// whether to act).
pub fn best_level(
    params: &DiskParams,
    model: &SpindlePowerModel,
    current: Rpm,
    idle: SimDuration,
) -> Rpm {
    let mut best = current;
    let mut best_energy = stay_energy(params, model, current, idle);
    for level in params.rpm_levels() {
        if level == current {
            continue;
        }
        if let Some(e) = level_energy(params, model, current, level, idle) {
            if e < best_energy {
                best_energy = e;
                best = level;
            }
        }
    }
    best
}

/// The shortest idle period for which a spin-down at full speed breaks
/// even (useful for tests and for tuning timeouts).
pub fn spin_down_breakeven(params: &DiskParams, model: &SpindlePowerModel) -> SimDuration {
    // Binary search over idle lengths; the saving is monotone in the idle
    // length beyond the transition floor.
    let mut lo = (params.spin_down_time + params.spin_up_time).as_micros();
    let mut hi = lo * 1_000;
    let pays =
        |us: u64| spin_down_pays_off(params, model, params.max_rpm, SimDuration::from_micros(us));
    if !pays(hi) {
        return SimDuration::MAX;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pays(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    SimDuration::from_micros(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DiskParams, SpindlePowerModel) {
        let p = DiskParams::paper_defaults();
        let m = SpindlePowerModel::new(&p).unwrap();
        (p, m)
    }

    #[test]
    fn short_idle_cannot_spin_down() {
        let (p, m) = setup();
        assert!(standby_energy(&p, &m, SimDuration::from_secs(20)).is_none());
        assert!(!spin_down_pays_off(
            &p,
            &m,
            p.max_rpm,
            SimDuration::from_secs(20)
        ));
    }

    #[test]
    fn long_idle_spin_down_pays_off() {
        let (p, m) = setup();
        assert!(spin_down_pays_off(
            &p,
            &m,
            p.max_rpm,
            SimDuration::from_secs(300)
        ));
    }

    #[test]
    fn breakeven_is_around_a_minute() {
        // With Table II constants: spin-down+up costs ~789 J against an
        // idle draw of 17.1 W and a standby saving of ~9.9 W, putting the
        // break-even near one minute of idleness. The paper's observation
        // that >96% of idle periods are under 5 s is what makes plain
        // spin-down ineffective.
        let (p, m) = setup();
        let be = spin_down_breakeven(&p, &m);
        let secs = be.as_secs_f64();
        assert!(
            (40.0..120.0).contains(&secs),
            "unexpected break-even: {secs} s"
        );
    }

    #[test]
    fn best_level_stays_put_for_tiny_idle() {
        let (p, m) = setup();
        assert_eq!(
            best_level(&p, &m, p.max_rpm, SimDuration::from_millis(100)),
            p.max_rpm
        );
    }

    #[test]
    fn best_level_descends_for_longer_idle() {
        let (p, m) = setup();
        // A multi-second idle period justifies some slow-down...
        let mid = best_level(&p, &m, p.max_rpm, SimDuration::from_secs(5));
        assert!(mid < p.max_rpm);
        // ...and a very long one justifies the floor speed.
        let deep = best_level(&p, &m, p.max_rpm, SimDuration::from_secs(600));
        assert_eq!(deep, p.min_rpm);
        // Monotonicity: longer idle never picks a faster level.
        let mut last = p.max_rpm;
        for secs in [1u64, 2, 5, 10, 30, 60, 300] {
            let l = best_level(&p, &m, p.max_rpm, SimDuration::from_secs(secs));
            assert!(l <= last, "level rose from {last} to {l} at {secs}s");
            last = l;
        }
    }

    #[test]
    fn multi_speed_exploits_shorter_idles_than_spin_down() {
        // The central premise of Section II: a speed reduction pays off at
        // idle lengths where a full spin-down cannot.
        let (p, m) = setup();
        let idle = SimDuration::from_secs(10);
        assert!(!spin_down_pays_off(&p, &m, p.max_rpm, idle));
        assert!(best_level(&p, &m, p.max_rpm, idle) < p.max_rpm);
    }

    #[test]
    fn level_energy_feasibility_boundary() {
        let (p, m) = setup();
        let level = Rpm::new(3_600);
        let transitions = p.rpm_change_time(p.max_rpm, level) * 2;
        assert!(level_energy(&p, &m, p.max_rpm, level, transitions).is_some());
        assert!(level_energy(
            &p,
            &m,
            p.max_rpm,
            level,
            transitions - SimDuration::from_micros(1)
        )
        .is_none());
    }

    #[test]
    fn stay_energy_matches_hand_computation_at_max() {
        let (p, m) = setup();
        let e = stay_energy(&p, &m, p.max_rpm, SimDuration::from_secs(10));
        assert!((e - 171.0).abs() < 1e-6);
    }

    #[test]
    fn single_speed_disk_has_no_alternative_levels() {
        let p = DiskParams::paper_single_speed();
        let m = SpindlePowerModel::new(&p).unwrap();
        assert_eq!(
            best_level(&p, &m, p.max_rpm, SimDuration::from_secs(600)),
            p.max_rpm
        );
    }
}
