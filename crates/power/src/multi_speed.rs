//! Multi-speed policies: history-based (prediction-driven) and staggered.

use sdds_disk::{Disk, DiskParams, Rpm, RpmChangePriority, SpindlePowerModel};
use simkit::{SimDuration, SimTime};

use crate::analysis;
use crate::decide::{node_idle, Decision, EnergyPolicy, PolicyEvent};
use crate::error::PolicyError;
use crate::predictor::IdlePredictor;
use crate::spin_down::check_unit_knob;

/// The paper's *History Based* strategy (§II, Fig. 3(a)): predict the idle
/// length from the history of comparable idle periods and transition the
/// node to the RPM level that "saves maximum energy while keeping the
/// performance impact bounded", returning to the fastest speed ahead of
/// the predicted end.
///
/// Like [`PredictiveSpinDown`](crate::PredictiveSpinDown), predictions are
/// gated behind an activation timeout so that millisecond-scale idle
/// periods in dense request streams never trigger speed changes — the
/// paper bounds this strategy's performance degradation to 4% by RPM-level
/// selection (§V-A), and the gate is the equivalent tuning knob here.
/// A wrong prediction still leads to either unnecessary power consumption
/// (ramping up too early) or performance loss (a burst served at reduced
/// speed).
#[derive(Debug)]
pub struct HistoryBasedMultiSpeed {
    params: DiskParams,
    model: SpindlePowerModel,
    /// History of idle periods in `[activation, long_gate)` — the short
    /// gaps a bounded slow-down can exploit.
    short_gaps: IdlePredictor,
    /// History of idle periods `>= long_gate` — the long gaps worth a deep
    /// descent.
    long_gaps: IdlePredictor,
    confidence: f64,
    /// Idleness that must elapse before the first (bounded) speed decision;
    /// also the minimum idle length entering the short-gap history.
    activation: SimDuration,
    /// Idleness beyond which the long-gap prediction takes over.
    long_gate: SimDuration,
    /// Minimum idle length recorded into the long-gap history. Kept well
    /// above `long_gate` so that stall- and drift-induced idles of a few
    /// seconds cannot drag the long-gap estimate down.
    long_observe: SimDuration,
    idle_since: Option<SimTime>,
    pending: Timer,
}

/// Which decision the policy's pending timer drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Timer {
    /// No timer outstanding.
    None,
    /// First decision at `idle_since + activation`: a bounded slow-down
    /// from the short-gap prediction.
    Gate,
    /// Ramp back to full speed ahead of the predicted end of a *short*
    /// gap (before the long gate is reached).
    ShortWake,
    /// Re-evaluation at `idle_since + long_gate`: the idle period outlived
    /// the short-gap estimate; descend per the long-gap prediction.
    LongGate,
    /// Ramp back to full speed ahead of the predicted idle end
    /// (Fig. 3(a)'s ahead-of-time transition).
    Wake,
}

impl HistoryBasedMultiSpeed {
    /// Creates the policy.
    ///
    /// `ewma_alpha` weights new observations of gated idle periods (1.0 =
    /// last-value prediction); `confidence` scales predictions before the
    /// level choice.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] unless `0 < ewma_alpha <= 1` and
    /// `0 < confidence <= 1` and `params` validates.
    pub fn new(params: &DiskParams, ewma_alpha: f64, confidence: f64) -> Result<Self, PolicyError> {
        check_unit_knob("history-based", "ewma_alpha", ewma_alpha)?;
        check_unit_knob("history-based", "confidence", confidence)?;
        Ok(HistoryBasedMultiSpeed {
            model: SpindlePowerModel::new(params)?,
            params: params.clone(),
            short_gaps: IdlePredictor::new(ewma_alpha),
            long_gaps: IdlePredictor::new(ewma_alpha),
            confidence,
            activation: SimDuration::from_millis(300),
            long_gate: SimDuration::from_secs(6),
            long_observe: SimDuration::from_secs(25),
            idle_since: None,
            pending: Timer::None,
        })
    }

    /// Read-only access to the short-gap predictor.
    pub fn predictor(&self) -> &IdlePredictor {
        &self.short_gaps
    }

    /// Read-only access to the long-gap predictor.
    pub fn long_predictor(&self) -> &IdlePredictor {
        &self.long_gaps
    }

    /// The activation gate.
    pub fn activation(&self) -> SimDuration {
        self.activation
    }

    /// Emits an immediate speed change for every member disk.
    fn set_all(disks: &[Disk], out: &mut Decision, level: Rpm) {
        for i in 0..disks.len() {
            out.set_rpm(i, level, RpmChangePriority::Immediate);
        }
    }

    /// The fastest level at most `steps` below maximum (the paper's
    /// bounded-performance-impact rule for short-horizon decisions).
    fn bounded_level(&self, level: Rpm, steps: u32) -> Rpm {
        let floor = self
            .params
            .max_rpm
            .get()
            .saturating_sub(steps * self.params.rpm_step)
            .max(self.params.min_rpm.get());
        Rpm::new(level.get().max(floor))
    }

    fn on_timer(&mut self, t: SimTime, disks: &[Disk], out: &mut Decision) {
        let Some(started) = self.idle_since else {
            out.clear_timer();
            return;
        };
        if !node_idle(disks) {
            // Mid-transition or busy: retry shortly; the decision stands.
            out.set_timer(t + SimDuration::from_millis(100));
            return;
        }
        let Some(current) = disks.first().and_then(|d| d.current_rpm()) else {
            // `node_idle` held above, so every disk reports a stable
            // speed; re-check shortly if that somehow changed.
            debug_assert!(false, "node_idle checked");
            out.set_timer(t + SimDuration::from_millis(100));
            return;
        };
        match self.pending {
            Timer::None => out.clear_timer(),
            Timer::Gate => {
                // Short-horizon decision: a *bounded* slow-down (at most
                // three levels) from the short-gap history, then ramp back
                // ahead of the predicted short end — or re-evaluate at the
                // long gate if the idleness persists.
                if let Some(predicted) = self.short_gaps.predict() {
                    let scaled = predicted.mul_f64(self.confidence);
                    let remaining = scaled.saturating_sub(self.activation);
                    let best = analysis::best_level(&self.params, &self.model, current, remaining);
                    let bounded = self.bounded_level(best, 3);
                    if bounded != current {
                        Self::set_all(disks, out, bounded);
                        let ramp_back = self.params.rpm_change_time(bounded, self.params.max_rpm);
                        let short_end = started + scaled.max(self.activation);
                        let wake = short_end - ramp_back.min(scaled);
                        if wake < started + self.long_gate {
                            self.pending = Timer::ShortWake;
                            out.set_timer(wake.max(t));
                            return;
                        }
                    }
                }
                self.pending = Timer::LongGate;
                out.set_timer(started + self.long_gate);
            }
            Timer::ShortWake => {
                // The short-gap estimate is nearly up: return to full speed
                // so an on-time arrival is served fast, then re-check at
                // the long gate in case the idleness persists.
                if current < self.params.max_rpm {
                    Self::set_all(disks, out, self.params.max_rpm);
                }
                self.pending = Timer::LongGate;
                out.set_timer((started + self.long_gate).max(t));
            }
            Timer::LongGate => {
                // The idle period outlived the short horizon: commit to the
                // long-gap prediction.
                let Some(predicted) = self.long_gaps.predict() else {
                    self.pending = Timer::None;
                    out.clear_timer();
                    return;
                };
                let elapsed = t.saturating_since(started);
                let remaining = predicted.mul_f64(self.confidence).saturating_sub(elapsed);
                let best = analysis::best_level(&self.params, &self.model, current, remaining);
                if best != current {
                    Self::set_all(disks, out, best);
                }
                if best < self.params.max_rpm {
                    let ramp_back = self.params.rpm_change_time(best, self.params.max_rpm);
                    self.pending = Timer::Wake;
                    out.set_timer(
                        t + remaining
                            .saturating_sub(ramp_back)
                            .max(SimDuration::from_millis(1)),
                    );
                } else {
                    self.pending = Timer::None;
                    out.clear_timer();
                }
            }
            Timer::Wake => {
                // Return to the fastest speed ahead of the predicted end.
                self.pending = Timer::None;
                if current < self.params.max_rpm {
                    Self::set_all(disks, out, self.params.max_rpm);
                }
                out.clear_timer();
            }
        }
    }
}

impl EnergyPolicy for HistoryBasedMultiSpeed {
    fn name(&self) -> &'static str {
        "history-based"
    }

    fn snapshot(&self) -> crate::PolicySnapshot {
        crate::PolicySnapshot {
            predicted_idle_us: self.short_gaps.predict().map(|d| d.as_micros()),
            // The long-gap estimate plays the forecast role here: it is
            // the policy's long-horizon belief, analogous to a table entry.
            forecast_us: self.long_gaps.predict().map(|d| d.as_micros()),
            mode: Some("learned"),
        }
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        match event {
            PolicyEvent::IdleStart { t } => {
                self.idle_since = Some(t);
                self.pending = Timer::Gate;
                out.set_timer(t + self.activation);
            }
            PolicyEvent::Timer { t } => self.on_timer(t, disks, out),
            PolicyEvent::RequestArrival { completed_idle, .. } => {
                self.idle_since = None;
                self.pending = Timer::None;
                if let Some(len) = completed_idle {
                    if len >= self.long_observe {
                        self.long_gaps.observe(len);
                    } else if len >= self.activation {
                        self.short_gaps.observe(len);
                    }
                }
            }
            PolicyEvent::AfterSubmit { .. } => {
                // Misprediction: a request arrived while the node is still
                // slow. Serve the burst at the current speed (multi-speed
                // disks can serve at low RPM) and return to full speed once
                // the queues drain.
                for (i, d) in disks.iter().enumerate() {
                    if d.current_rpm().is_some_and(|rpm| rpm < self.params.max_rpm) {
                        out.set_rpm(i, self.params.max_rpm, RpmChangePriority::WhenIdle);
                    }
                }
            }
        }
    }
}

/// The paper's *Staggered* strategy (§II, Fig. 3(b)): travel through the
/// speed levels one at a time as the idleness persists, and ramp straight
/// back to the fastest speed when the next request arrives.
///
/// The ramp back is what makes this strategy's performance penalty
/// "relatively higher": a request can arrive just after the node reached a
/// very low speed, and the recovery to full speed then delays it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaggeredMultiSpeed {
    max_rpm: Rpm,
    min_rpm: Rpm,
    rpm_step: u32,
    step_timeout: SimDuration,
}

impl StaggeredMultiSpeed {
    /// Creates the policy with the per-level idleness timeout.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if `params` fails validation.
    pub fn new(params: &DiskParams, step_timeout: SimDuration) -> Result<Self, PolicyError> {
        params.validate()?;
        Ok(StaggeredMultiSpeed {
            max_rpm: params.max_rpm,
            min_rpm: params.min_rpm,
            rpm_step: params.rpm_step,
            step_timeout,
        })
    }

    /// The next level below `rpm`, or `None` at the floor.
    fn level_below(&self, rpm: Rpm) -> Option<Rpm> {
        if rpm <= self.min_rpm {
            None
        } else {
            Some(Rpm::new(rpm.get() - self.rpm_step))
        }
    }
}

impl EnergyPolicy for StaggeredMultiSpeed {
    fn name(&self) -> &'static str {
        "staggered"
    }

    fn snapshot(&self) -> crate::PolicySnapshot {
        crate::PolicySnapshot {
            mode: Some("staggered-step"),
            ..crate::PolicySnapshot::default()
        }
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        match event {
            PolicyEvent::IdleStart { t } => out.set_timer(t + self.step_timeout),
            PolicyEvent::Timer { t } => {
                if !node_idle(disks) {
                    // Mid-transition (the previous step is still in
                    // progress): check again after another timeout.
                    out.set_timer(t + self.step_timeout);
                    return;
                }
                let Some(rpm) = disks.first().and_then(|d| d.current_rpm()) else {
                    debug_assert!(false, "node_idle checked");
                    out.set_timer(t + self.step_timeout);
                    return;
                };
                match self.level_below(rpm) {
                    Some(next) => {
                        for i in 0..disks.len() {
                            out.set_rpm(i, next, RpmChangePriority::Immediate);
                        }
                        out.set_timer(t + self.step_timeout);
                    }
                    None => out.clear_timer(), // already at the floor
                }
            }
            PolicyEvent::RequestArrival { .. } => {
                // Ramp straight back to the fastest speed; the arriving
                // request waits for the recovery (this is the staggered
                // penalty).
                for (i, d) in disks.iter().enumerate() {
                    if d.current_rpm() != Some(self.max_rpm) {
                        out.set_rpm(i, self.max_rpm, RpmChangePriority::Immediate);
                    }
                }
            }
            PolicyEvent::AfterSubmit { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::drive;
    use sdds_disk::{DiskRequest, DiskState, RequestKind};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn single() -> Vec<Disk> {
        vec![Disk::new(DiskParams::paper_defaults()).unwrap()]
    }

    fn idle_start(p: &mut dyn EnergyPolicy, at: SimTime, disks: &mut [Disk]) -> Option<SimTime> {
        drive(p, PolicyEvent::IdleStart { t: at }, disks)
    }

    fn timer(p: &mut dyn EnergyPolicy, at: SimTime, disks: &mut [Disk]) -> Option<SimTime> {
        drive(p, PolicyEvent::Timer { t: at }, disks)
    }

    fn arrival(
        p: &mut dyn EnergyPolicy,
        at: SimTime,
        completed_idle: Option<SimDuration>,
        disks: &mut [Disk],
    ) {
        drive(
            p,
            PolicyEvent::RequestArrival {
                t: at,
                completed_idle,
            },
            disks,
        );
    }

    fn after_submit(p: &mut dyn EnergyPolicy, at: SimTime, disks: &mut [Disk]) {
        drive(p, PolicyEvent::AfterSubmit { t: at }, disks);
    }

    /// Feeds a long-gap observation, then drives the staged timers (gate,
    /// long gate) from `start`. Returns the wake timer, if any.
    fn engage_history(
        p: &mut HistoryBasedMultiSpeed,
        disks: &mut [Disk],
        observed: SimDuration,
        start: SimTime,
    ) -> Option<SimTime> {
        arrival(p, start, Some(observed), disks);
        let gate = idle_start(p, start, disks).unwrap();
        for d in disks.iter_mut() {
            d.advance_to(gate);
        }
        let next = timer(p, gate, disks)?;
        for d in disks.iter_mut() {
            d.advance_to(next);
        }
        timer(p, next, disks)
    }

    #[test]
    fn history_slows_down_on_long_prediction() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        let wake = engage_history(&mut p, &mut disks, secs(60), t(0));
        assert!(matches!(disks[0].state(), DiskState::ChangingSpeed { .. }));
        assert!(wake.is_some());
        // The wake-up precedes the predicted end.
        assert!(wake.unwrap() < t(60_000_000));
    }

    #[test]
    fn history_timer_ramps_back_to_max() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        let wake = engage_history(&mut p, &mut disks, secs(60), t(0)).unwrap();
        disks[0].advance_to(wake);
        timer(&mut p, wake, &mut disks);
        disks[0].advance_to(t(60_000_000));
        assert_eq!(
            disks[0].current_rpm(),
            Some(params.max_rpm),
            "disk should be back at full speed by the predicted end"
        );
    }

    #[test]
    fn history_without_history_does_nothing() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        // No short-gap history: the gate only schedules the long-gate
        // re-check; no long-gap history either, so nothing happens.
        let long_gate = timer(&mut p, gate, &mut disks).unwrap();
        disks[0].advance_to(long_gate);
        assert_eq!(timer(&mut p, long_gate, &mut disks), None);
        assert_eq!(disks[0].counters().rpm_changes, 0);
    }

    #[test]
    fn history_ignores_sub_gate_idles() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        arrival(&mut p, t(0), Some(SimDuration::from_millis(5)), &mut disks);
        assert_eq!(p.predictor().observations(), 0);
        assert_eq!(p.long_predictor().observations(), 0);
    }

    #[test]
    fn history_routes_observations_by_length() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        arrival(&mut p, t(0), Some(secs(2)), &mut disks);
        arrival(&mut p, t(0), Some(secs(60)), &mut disks);
        assert_eq!(p.predictor().observations(), 1);
        assert_eq!(p.long_predictor().observations(), 1);
    }

    #[test]
    fn history_short_remaining_stays_at_max() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        // Observed short gap barely above the gate: remaining after the
        // gate is too short for any transition pair, and no long-gap
        // history exists.
        let wake = engage_history(&mut p, &mut disks, SimDuration::from_millis(350), t(0));
        assert_eq!(wake, None);
        assert_eq!(disks[0].counters().rpm_changes, 0);
    }

    #[test]
    fn history_bounds_short_horizon_descent() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        // A 2.5 s short-gap history: the gate decision must not descend
        // more than three levels even though deeper would save more.
        arrival(
            &mut p,
            t(0),
            Some(SimDuration::from_millis(2_500)),
            &mut disks,
        );
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        timer(&mut p, gate, &mut disks);
        // Let any transition settle (but not long enough for later stages).
        disks[0].advance_to(t(600_000) + SimDuration::from_millis(400));
        let rpm = disks[0].current_rpm().expect("settled");
        assert!(
            rpm.get() >= params.max_rpm.get() - 3 * params.rpm_step,
            "short-horizon descent exceeded three levels: {rpm}"
        );
        assert!(rpm < params.max_rpm, "a profitable short descent happened");
    }

    #[test]
    fn history_moves_all_members_together() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![
            Disk::new(params.clone()).unwrap(),
            Disk::new(params.clone()).unwrap(),
        ];
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        engage_history(&mut p, &mut disks, secs(120), t(0));
        for d in &disks {
            assert!(matches!(d.state(), DiskState::ChangingSpeed { .. }));
        }
    }

    #[test]
    fn history_recovers_after_misprediction() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = HistoryBasedMultiSpeed::new(&params, 1.0, 1.0).unwrap();
        engage_history(&mut p, &mut disks, secs(300), t(0));
        // Let the slow-down finish, then a request arrives much earlier
        // than predicted.
        disks[0].advance_to(t(10_000_000));
        let at = t(10_000_000);
        arrival(&mut p, at, Some(secs(10)), &mut disks);
        disks[0].submit(DiskRequest::new(0, RequestKind::Read, 0, 8), at);
        after_submit(&mut p, at, &mut disks);
        // The burst is served at the low speed, then the disk ramps to max.
        disks[0].advance_to(t(60_000_000));
        assert_eq!(disks[0].current_rpm(), Some(params.max_rpm));
        assert_eq!(disks[0].counters().requests_served, 1);
    }

    #[test]
    fn staggered_descends_level_by_level() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = StaggeredMultiSpeed::new(&params, SimDuration::from_millis(1_000)).unwrap();
        let mut armed = idle_start(&mut p, t(0), &mut disks).unwrap();
        let mut steps = 0;
        loop {
            disks[0].advance_to(armed);
            match timer(&mut p, armed, &mut disks) {
                Some(next) => armed = next,
                None => break,
            }
            steps += 1;
            assert!(steps < 1_000, "staggered descent did not terminate");
        }
        disks[0].advance_to(armed + secs(5));
        assert_eq!(disks[0].current_rpm(), Some(params.min_rpm));
        assert_eq!(disks[0].counters().rpm_changes as u32, 7);
    }

    #[test]
    fn staggered_arrival_ramps_to_max_before_service() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = StaggeredMultiSpeed::new(&params, SimDuration::from_millis(1_000)).unwrap();
        // Step down twice.
        let armed = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(armed);
        timer(&mut p, armed, &mut disks);
        disks[0].advance_to(t(4_000_000));
        assert_eq!(disks[0].current_rpm(), Some(Rpm::new(10_800)));
        // Request arrives: policy orders the recovery ramp first.
        let at = t(4_000_000);
        arrival(&mut p, at, Some(secs(4)), &mut disks);
        disks[0].submit(DiskRequest::new(0, RequestKind::Read, 0, 8), at);
        disks[0].advance_to(t(10_000_000));
        let done = disks[0].drain_completions();
        assert_eq!(done.len(), 1);
        // Response includes the ramp-up from 10,800 to 12,000 RPM.
        assert!(done[0].response_time() >= params.rpm_change_per_step);
        assert_eq!(disks[0].current_rpm(), Some(params.max_rpm));
    }

    #[test]
    fn staggered_at_floor_stops_scheduling() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = StaggeredMultiSpeed::new(&params, SimDuration::from_millis(1_000)).unwrap();
        disks[0].request_rpm_change(t(0), params.min_rpm, RpmChangePriority::Immediate);
        disks[0].advance_to(t(0) + secs(10));
        let at = disks[0].now();
        assert_eq!(timer(&mut p, at, &mut disks), None);
    }

    #[test]
    fn staggered_mid_transition_retries() {
        let params = DiskParams::paper_defaults();
        let mut disks = single();
        let mut p = StaggeredMultiSpeed::new(&params, SimDuration::from_millis(60)).unwrap();
        let armed = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(armed);
        let next = timer(&mut p, armed, &mut disks).unwrap(); // starts step 1 (100 ms)
        disks[0].advance_to(next); // 60 ms into the 100 ms transition
        let retry = timer(&mut p, next, &mut disks);
        assert!(retry.is_some(), "mid-transition timers should reschedule");
        assert_eq!(disks[0].counters().rpm_changes, 1, "no second change yet");
    }
}
