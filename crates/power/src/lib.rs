//! Disk power-management policies for the SDDS reproduction.
//!
//! Section II of the paper describes four hardware power-saving strategies,
//! all of which this crate implements on top of the passive disk model in
//! `sdds-disk`:
//!
//! * **Simple** spin-down ([`SimpleSpinDown`]) — spin down after a fixed
//!   idleness timeout, spin back up on the next request.
//! * **Prediction-based** spin-down ([`PredictiveSpinDown`]) — predict the
//!   coming idle period from recent history, spin down immediately when the
//!   prediction justifies it, and spin up ahead of the predicted end to
//!   hide the spin-up latency.
//! * **History-based** multi-speed ([`HistoryBasedMultiSpeed`]) — predict
//!   the idle length and move to the most energy-profitable RPM level,
//!   returning to full speed ahead of the predicted end.
//! * **Staggered** multi-speed ([`StaggeredMultiSpeed`]) — step down one
//!   speed level for every additional timeout of observed idleness, ramping
//!   straight back to full speed when the next request arrives.
//!
//! [`NoPm`] is the paper's *Default Scheme* (no power management), used as
//! the normalization baseline in every figure.
//!
//! Beyond the paper's hardware strategies, the crate carries the
//! *software-directed* side of the reproduction on the same runtime: the
//! [`TableLookup`] policy replays per-node idle forecasts distilled from a
//! compiled schedule, and the online family ([`OnlineSpinDown`],
//! [`OnlineMultiSpeed`], [`HybridPolicy`]) learns the same signals from
//! the live request stream for workloads no compiler sees.
//!
//! Every strategy implements one trait, [`EnergyPolicy`]: it consumes
//! [`PolicyEvent`]s (idleness edges, timer fires, request arrivals) and
//! emits [`PowerDirective`]s plus a [`TimerDirective`] into a [`Decision`]
//! buffer. The [`PoweredArray`] driver owns an I/O node's disk array plus
//! a boxed policy, translates the kernel's event stream into policy
//! events, and applies whatever the policy decides — the node-level
//! control loop the paper describes in §II.
//!
//! # Example
//!
//! ```
//! use sdds_disk::{DiskParams, DiskRequest, RequestKind};
//! use sdds_power::{PolicyKind, PoweredArray};
//! use simkit::{SimDuration, SimTime};
//!
//! let params = DiskParams::paper_defaults();
//! let mut node = PoweredArray::new(params, 1, PolicyKind::simple_spin_down_default())
//!     .expect("paper defaults are valid");
//! node.submit(0, DiskRequest::new(0, RequestKind::Read, 0, 64), SimTime::ZERO);
//! node.finish(SimTime::ZERO + SimDuration::from_secs(120));
//! // After a long idle stretch the simple policy has spun the node down.
//! assert!(node.disks()[0].counters().spin_downs > 0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod decide;
mod driver;
mod error;
mod multi_speed;
mod no_pm;
mod online;
mod policy;
mod predictor;
pub mod scene;
mod spin_down;
mod table;

pub use decide::{
    node_idle, Decision, EnergyPolicy, PolicyEvent, PolicySnapshot, PowerDirective, TimerDirective,
};
pub use driver::PoweredArray;
pub use error::PolicyError;
pub use multi_speed::{HistoryBasedMultiSpeed, StaggeredMultiSpeed};
pub use no_pm::NoPm;
pub use online::{HybridPolicy, OnlineMultiSpeed, OnlineSpinDown};
pub use policy::{PolicyContext, PolicyKind};
pub use predictor::IdlePredictor;
pub use spin_down::{PredictiveSpinDown, SimpleSpinDown};
pub use table::TableLookup;
