//! The unified energy-decision layer.
//!
//! Every power-management strategy in the workspace — the paper's
//! compile-time-assisted §II schemes, the table-lookup policy distilled
//! from a compiled schedule, and the online family that learns from the
//! live request stream — implements one trait, [`EnergyPolicy`]. The
//! driver ([`crate::PoweredArray`]) translates the kernel's event stream
//! into [`PolicyEvent`]s, hands each event to the policy together with a
//! read-only view of the disks, and applies whatever [`PowerDirective`]s
//! and [`TimerDirective`] the policy emits into its [`Decision`] scratch
//! buffer. Policies never mutate hardware directly; the event→directive
//! split is what lets compile-time and online strategies share one
//! runtime without the driver knowing which family it is hosting.
//!
//! The [`Decision`] buffer is owned by the driver and reused across
//! events, so steady-state decision-making allocates nothing.

use sdds_disk::{Disk, Rpm, RpmChangePriority};
use simkit::SimTime;

/// One occurrence on the kernel's event stream, as seen by a policy.
///
/// These are exactly the four hook points the driver has always had;
/// unifying them into a value makes a policy a pure event consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyEvent {
    /// Every disk on the node just became idle (no outstanding requests,
    /// all spindles up). Fired once per idle period.
    IdleStart {
        /// Calendar time of the idleness edge.
        t: SimTime,
    },
    /// The policy's own timer (armed by an earlier [`TimerDirective`])
    /// fired.
    Timer {
        /// Calendar time the timer fired at.
        t: SimTime,
    },
    /// A request is about to be submitted to the node.
    RequestArrival {
        /// Calendar time of the arrival.
        t: SimTime,
        /// Length of the idle period this arrival terminates, when the
        /// node was idle: the policy's observation signal for predictors.
        completed_idle: Option<simkit::SimDuration>,
    },
    /// A request was just handed to its disk (queue depths now reflect
    /// it). Multi-speed policies use this to ramp spindles back up.
    AfterSubmit {
        /// Calendar time of the submission.
        t: SimTime,
    },
}

impl PolicyEvent {
    /// Calendar time the event occurred at.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match *self {
            PolicyEvent::IdleStart { t }
            | PolicyEvent::Timer { t }
            | PolicyEvent::RequestArrival { t, .. }
            | PolicyEvent::AfterSubmit { t } => t,
        }
    }
}

/// A hardware action requested by a policy, applied by the driver in
/// emission order at the event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerDirective {
    /// Begin spinning disk `disk` down to standby.
    SpinDown {
        /// Index of the disk within the node.
        disk: usize,
    },
    /// Begin spinning disk `disk` back up to full speed.
    SpinUp {
        /// Index of the disk within the node.
        disk: usize,
    },
    /// Change disk `disk`'s rotational speed.
    SetRpm {
        /// Index of the disk within the node.
        disk: usize,
        /// Target speed.
        rpm: Rpm,
        /// Whether to preempt in-flight work or wait for idleness.
        priority: RpmChangePriority,
    },
}

/// What should happen to the policy's (single) wake-up timer after an
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimerDirective {
    /// Leave any pending timer as it is.
    #[default]
    Keep,
    /// Cancel the pending timer, if any.
    Clear,
    /// (Re-)arm the timer to fire at the given time.
    At(SimTime),
}

/// The outcome of one [`EnergyPolicy::decide`] call: zero or more
/// hardware directives plus a timer directive.
///
/// The driver owns one `Decision` and [`reset`](Decision::reset)s it
/// before every event, so policies just push into it.
#[derive(Debug, Default)]
pub struct Decision {
    directives: Vec<PowerDirective>,
    timer: TimerDirective,
}

impl Decision {
    /// An empty decision buffer.
    #[must_use]
    pub fn new() -> Self {
        Decision::default()
    }

    /// Clears the buffer for the next event (keeps capacity).
    pub fn reset(&mut self) {
        self.directives.clear();
        self.timer = TimerDirective::Keep;
    }

    /// Requests a spin-down of disk `disk`.
    pub fn spin_down(&mut self, disk: usize) {
        self.directives.push(PowerDirective::SpinDown { disk });
    }

    /// Requests a spin-up of disk `disk`.
    pub fn spin_up(&mut self, disk: usize) {
        self.directives.push(PowerDirective::SpinUp { disk });
    }

    /// Requests a speed change on disk `disk`.
    pub fn set_rpm(&mut self, disk: usize, rpm: Rpm, priority: RpmChangePriority) {
        self.directives.push(PowerDirective::SetRpm {
            disk,
            rpm,
            priority,
        });
    }

    /// Arms the policy timer to fire at `t`.
    pub fn set_timer(&mut self, t: SimTime) {
        self.timer = TimerDirective::At(t);
    }

    /// Cancels any pending policy timer.
    pub fn clear_timer(&mut self) {
        self.timer = TimerDirective::Clear;
    }

    /// The timer directive for this event.
    #[must_use]
    pub fn timer(&self) -> TimerDirective {
        self.timer
    }

    /// The hardware directives, in emission order.
    #[must_use]
    pub fn directives(&self) -> &[PowerDirective] {
        &self.directives
    }

    /// Applies every directive to `disks` at time `t`, in emission order.
    ///
    /// Out-of-range disk indices are ignored (a policy bug surfaced by
    /// the debug assertion, not a crash in release runs).
    pub fn apply(&self, t: SimTime, disks: &mut [Disk]) {
        for d in &self.directives {
            match *d {
                PowerDirective::SpinDown { disk } => {
                    debug_assert!(disk < disks.len(), "directive for unknown disk {disk}");
                    if let Some(target) = disks.get_mut(disk) {
                        target.start_spin_down(t);
                    }
                }
                PowerDirective::SpinUp { disk } => {
                    debug_assert!(disk < disks.len(), "directive for unknown disk {disk}");
                    if let Some(target) = disks.get_mut(disk) {
                        target.start_spin_up(t);
                    }
                }
                PowerDirective::SetRpm {
                    disk,
                    rpm,
                    priority,
                } => {
                    debug_assert!(disk < disks.len(), "directive for unknown disk {disk}");
                    if let Some(target) = disks.get_mut(disk) {
                        target.request_rpm_change(t, rpm, priority);
                    }
                }
            }
        }
    }
}

/// A power-management strategy driven by the kernel event stream.
///
/// Implementations receive every [`PolicyEvent`] for their node together
/// with a read-only snapshot of the disks, and respond by pushing
/// directives into `out`. The driver applies the directives (in order,
/// at the event time) and honours the timer directive; policies hold
/// whatever internal state they need (predictors, cursors, RNG streams)
/// but never touch hardware themselves.
///
/// Determinism contract: `decide` must be a pure function of the
/// policy's internal state and its inputs. Randomized policies must draw
/// only from a [`simkit::DetRng`] substream owned by the policy, so a
/// given `(seed, node, event stream)` always reproduces the same
/// decisions.
pub trait EnergyPolicy: std::fmt::Debug + Send {
    /// A short stable name (used in reports and trace attribution).
    fn name(&self) -> &'static str;

    /// Reacts to one event by pushing directives into `out`.
    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision);

    /// A read-only snapshot of the learner state that the *next* call to
    /// [`EnergyPolicy::decide`] would act on, recorded into every
    /// `PolicyDecision` trace event so attribution can explain each
    /// directive. The default (all-`None`) suits stateless policies;
    /// learners override it. Must not mutate the policy.
    fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot::default()
    }
}

/// The learner-state snapshot behind one policy decision: what the
/// policy believed at the instant it was asked to decide.
///
/// All fields are optional because the five policy families expose
/// different state: fixed-timeout policies carry only a `mode` label,
/// predictive ones a learned gap estimate, the table-driven one the
/// compiler forecast it is about to consume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicySnapshot {
    /// Learned idle-gap estimate (EWMA predictor output), microseconds.
    pub predicted_idle_us: Option<u64>,
    /// Long-horizon forecast, microseconds: the compiler table entry
    /// about to be consumed, or a history policy's long-gap estimate.
    pub forecast_us: Option<u64>,
    /// Decision-mode label (e.g. `"fixed-timeout"`, `"learned"`,
    /// `"bootstrap"`, `"table"`), when the policy distinguishes modes.
    pub mode: Option<&'static str>,
}

/// True when every disk is request-free and spinning (the node-level
/// idleness edge the driver's `IdleStart` event is defined by).
#[must_use]
pub fn node_idle(disks: &[Disk]) -> bool {
    disks
        .iter()
        .all(|d| d.outstanding() == 0 && d.current_rpm().is_some())
}

/// Test helper: runs one event through a policy, applies its directives,
/// and reports the armed timer (`At(t)` → `Some(t)`, otherwise `None`).
#[cfg(test)]
pub(crate) fn drive(
    policy: &mut dyn EnergyPolicy,
    event: PolicyEvent,
    disks: &mut [Disk],
) -> Option<SimTime> {
    let mut out = Decision::new();
    policy.decide(event, disks, &mut out);
    out.apply(event.at(), disks);
    match out.timer() {
        TimerDirective::At(t) => Some(t),
        TimerDirective::Keep | TimerDirective::Clear => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_disk::DiskParams;

    #[test]
    fn decision_reset_clears_directives_and_timer() {
        let mut d = Decision::new();
        d.spin_down(0);
        d.set_timer(SimTime::from_micros(5));
        assert_eq!(d.directives().len(), 1);
        d.reset();
        assert!(d.directives().is_empty());
        assert_eq!(d.timer(), TimerDirective::Keep);
    }

    #[test]
    fn apply_executes_directives_in_order() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![
            Disk::new(params.clone()).unwrap(),
            Disk::new(params.clone()).unwrap(),
        ];
        let mut d = Decision::new();
        d.spin_down(0);
        d.spin_down(1);
        d.apply(SimTime::ZERO, &mut disks);
        // Both disks are now leaving the spun-up state.
        let t = SimTime::ZERO + params.spin_down_time;
        for disk in &mut disks {
            disk.advance_to(t);
            assert_eq!(disk.current_rpm(), None);
        }
    }

    #[test]
    fn event_reports_its_time() {
        let t = SimTime::from_micros(77);
        assert_eq!(PolicyEvent::IdleStart { t }.at(), t);
        assert_eq!(PolicyEvent::Timer { t }.at(), t);
        assert_eq!(
            PolicyEvent::RequestArrival {
                t,
                completed_idle: None
            }
            .at(),
            t
        );
        assert_eq!(PolicyEvent::AfterSubmit { t }.at(), t);
    }

    #[test]
    fn node_idle_requires_spinning_and_empty() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        assert!(node_idle(&disks));
        disks[0].start_spin_down(SimTime::ZERO);
        disks[0].advance_to(SimTime::ZERO + params.spin_down_time);
        assert!(!node_idle(&disks));
    }
}
