//! Online energy policies: learn from the live request stream instead of a
//! compile-time schedule.
//!
//! The compile-time scheme of the paper needs the whole access pattern up
//! front. The policies here are its run-time counterpart for workloads no
//! compiler sees (DBMS-style keyed streams): they watch the same
//! [`PolicyEvent`] stream every other policy sees and learn idle-period and
//! demand statistics on the fly.
//!
//! * [`OnlineSpinDown`] — exponential-average idle-period predictor with a
//!   jittered bootstrap: before any history exists, a long idle stretch
//!   still earns an unconditional spin-down after a per-node randomized
//!   timeout (so a fleet of nodes does not spin down in lockstep).
//! * [`OnlineMultiSpeed`] — demand-window speed selection: an exponential
//!   average over observed completed idle gaps (clamped to a window cap)
//!   predicts how long the node has until the next request, and the speed
//!   level is chosen to break even over that window.
//! * [`HybridPolicy`] — starts from the table-calibrated history-based
//!   policy and hands control to the online demand-window policy once the
//!   online side has seen enough of the live stream to correct the table's
//!   assumptions.
//!
//! Determinism: each policy draws its jitter once, at construction, from a
//! per-node [`DetRng`] substream ([`simkit::StreamId::Policy`] narrowed by
//! node index); after construction every decision is a pure function of
//! the event stream.

use sdds_disk::{Disk, DiskParams, RpmChangePriority, SpindlePowerModel};
use simkit::{DetRng, SimDuration, SimTime};

use crate::analysis;
use crate::decide::{node_idle, Decision, EnergyPolicy, PolicyEvent};
use crate::error::PolicyError;
use crate::multi_speed::HistoryBasedMultiSpeed;
use crate::predictor::IdlePredictor;
use crate::spin_down::check_unit_knob;

/// Online spin-down: EWMA idle-period prediction plus a jittered bootstrap
/// timeout for the cold-start phase.
#[derive(Debug)]
pub struct OnlineSpinDown {
    params: DiskParams,
    model: SpindlePowerModel,
    predictor: IdlePredictor,
    confidence: f64,
    /// Idleness that must elapse before a decision is attempted; also the
    /// minimum idle length entering the history.
    activation: SimDuration,
    /// Cold-start timeout: with no history yet, spin down unconditionally
    /// once the node has idled this long. Jittered per node at
    /// construction so arrays do not phase-lock.
    bootstrap: SimDuration,
    idle_since: Option<SimTime>,
}

impl OnlineSpinDown {
    /// Creates the policy; `rng` must be the node's own policy substream.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] unless `0 < ewma_alpha <= 1` and
    /// `0 < confidence <= 1` and `params` validates.
    pub fn new(
        params: &DiskParams,
        ewma_alpha: f64,
        confidence: f64,
        mut rng: DetRng,
    ) -> Result<Self, PolicyError> {
        check_unit_knob("online", "ewma_alpha", ewma_alpha)?;
        check_unit_knob("online", "confidence", confidence)?;
        Ok(OnlineSpinDown {
            model: SpindlePowerModel::new(params)?,
            params: params.clone(),
            predictor: IdlePredictor::new(ewma_alpha),
            confidence,
            activation: SimDuration::from_secs(2),
            bootstrap: SimDuration::from_secs(40)
                + SimDuration::from_micros(rng.range_u64(0, 20_000_000)),
            idle_since: None,
        })
    }

    /// Read-only access to the predictor (for diagnostics and tests).
    pub fn predictor(&self) -> &IdlePredictor {
        &self.predictor
    }

    /// The jittered cold-start timeout this node drew.
    pub fn bootstrap(&self) -> SimDuration {
        self.bootstrap
    }

    fn on_timer(&mut self, t: SimTime, disks: &[Disk], out: &mut Decision) {
        let Some(started) = self.idle_since else {
            return;
        };
        if disks.iter().any(|d| d.current_rpm().is_none()) {
            // A wake timer fired while the node is in (or heading to)
            // standby: bring it back up for the predicted demand.
            for i in 0..disks.len() {
                out.spin_up(i);
            }
            self.idle_since = None;
            return;
        }
        if !node_idle(disks) {
            return;
        }
        let elapsed = t.saturating_since(started);
        let current = disks
            .first()
            .and_then(|d| d.current_rpm())
            .unwrap_or(self.params.max_rpm);
        match self.predictor.predict() {
            Some(predicted) => {
                let remaining = predicted.mul_f64(self.confidence).saturating_sub(elapsed);
                if !analysis::spin_down_pays_off(&self.params, &self.model, current, remaining) {
                    return;
                }
                for i in 0..disks.len() {
                    out.spin_down(i);
                }
                let wake = remaining
                    .saturating_sub(self.params.spin_up_time)
                    .max(self.params.spin_down_time);
                out.set_timer(t + wake);
            }
            None => {
                // Cold start: no history to predict from. A sufficiently
                // long idle stretch is spun down anyway (the disks wake on
                // demand; no wake timer is armed since there is no
                // predicted end to beat).
                if elapsed >= self.bootstrap {
                    for i in 0..disks.len() {
                        out.spin_down(i);
                    }
                } else {
                    out.set_timer(started + self.bootstrap);
                }
            }
        }
    }
}

impl EnergyPolicy for OnlineSpinDown {
    fn name(&self) -> &'static str {
        "online"
    }

    fn snapshot(&self) -> crate::PolicySnapshot {
        crate::PolicySnapshot {
            predicted_idle_us: self.predictor.predict().map(|d| d.as_micros()),
            forecast_us: None,
            mode: Some(if self.predictor.observations() == 0 {
                "bootstrap"
            } else {
                "learned"
            }),
        }
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        match event {
            PolicyEvent::IdleStart { t } => {
                self.idle_since = Some(t);
                out.set_timer(t + self.activation);
            }
            PolicyEvent::Timer { t } => {
                out.clear_timer();
                self.on_timer(t, disks, out);
            }
            PolicyEvent::RequestArrival { completed_idle, .. } => {
                self.idle_since = None;
                if let Some(len) = completed_idle {
                    if len >= self.activation {
                        self.predictor.observe(len);
                    }
                }
            }
            PolicyEvent::AfterSubmit { .. } => {}
        }
    }
}

/// Which decision an [`OnlineMultiSpeed`] timer drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// No timer outstanding.
    None,
    /// First decision after the activation gate: pick a level for the
    /// predicted demand window.
    Gate,
    /// Ramp back to full speed ahead of the predicted window end.
    Wake,
}

/// Online multi-speed: demand-window speed selection from observed
/// completed idle gaps.
#[derive(Debug)]
pub struct OnlineMultiSpeed {
    params: DiskParams,
    model: SpindlePowerModel,
    /// EWMA over *observed* completed idle gaps (clamped to
    /// [`Self::WINDOW_CAP`]): how long the node actually sat quiet before
    /// the arriving request, i.e. the demand window the level choice must
    /// break even inside. Raw inter-arrival distance would also count the
    /// previous request's service time — which straggler faults stretch
    /// at run time — so the learner reads the driver's observed idle
    /// measurement instead.
    gaps: IdlePredictor,
    confidence: f64,
    /// Idleness that must elapse before a level decision; also the minimum
    /// gap length entering the history.
    activation: SimDuration,
    /// Per-node gate jitter drawn at construction: staggers simultaneous
    /// decisions across nodes without affecting what is decided.
    jitter: SimDuration,
    idle_since: Option<SimTime>,
    pending: Pending,
}

impl OnlineMultiSpeed {
    /// Gaps longer than this are recorded as exactly this: one overnight
    /// lull must not convince the predictor that whole hours of idleness
    /// are the norm.
    const WINDOW_CAP: SimDuration = SimDuration::from_secs(60);

    /// Creates the policy; `rng` must be the node's own policy substream.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] unless `0 < ewma_alpha <= 1` and
    /// `0 < confidence <= 1` and `params` validates.
    pub fn new(
        params: &DiskParams,
        ewma_alpha: f64,
        confidence: f64,
        mut rng: DetRng,
    ) -> Result<Self, PolicyError> {
        check_unit_knob("online-speed", "ewma_alpha", ewma_alpha)?;
        check_unit_knob("online-speed", "confidence", confidence)?;
        Ok(OnlineMultiSpeed {
            model: SpindlePowerModel::new(params)?,
            params: params.clone(),
            gaps: IdlePredictor::new(ewma_alpha),
            confidence,
            activation: SimDuration::from_millis(500),
            jitter: SimDuration::from_micros(rng.range_u64(0, 50_000)),
            idle_since: None,
            pending: Pending::None,
        })
    }

    /// Number of completed idle gaps observed so far.
    pub fn observations(&self) -> u64 {
        self.gaps.observations()
    }

    fn on_timer(&mut self, t: SimTime, disks: &[Disk], out: &mut Decision) {
        let Some(started) = self.idle_since else {
            out.clear_timer();
            return;
        };
        if !node_idle(disks) {
            out.set_timer(t + SimDuration::from_millis(100));
            return;
        }
        let Some(current) = disks.first().and_then(|d| d.current_rpm()) else {
            debug_assert!(false, "node_idle checked");
            out.set_timer(t + SimDuration::from_millis(100));
            return;
        };
        match self.pending {
            Pending::None => out.clear_timer(),
            Pending::Gate => {
                let Some(predicted) = self.gaps.predict() else {
                    self.pending = Pending::None;
                    out.clear_timer();
                    return;
                };
                let elapsed = t.saturating_since(started);
                let remaining = predicted.mul_f64(self.confidence).saturating_sub(elapsed);
                let best = analysis::best_level(&self.params, &self.model, current, remaining);
                if best != current {
                    for i in 0..disks.len() {
                        out.set_rpm(i, best, RpmChangePriority::Immediate);
                    }
                }
                if best < self.params.max_rpm {
                    let ramp_back = self.params.rpm_change_time(best, self.params.max_rpm);
                    self.pending = Pending::Wake;
                    out.set_timer(
                        t + remaining
                            .saturating_sub(ramp_back)
                            .max(SimDuration::from_millis(1)),
                    );
                } else {
                    self.pending = Pending::None;
                    out.clear_timer();
                }
            }
            Pending::Wake => {
                self.pending = Pending::None;
                if current < self.params.max_rpm {
                    for i in 0..disks.len() {
                        out.set_rpm(i, self.params.max_rpm, RpmChangePriority::Immediate);
                    }
                }
                out.clear_timer();
            }
        }
    }
}

impl EnergyPolicy for OnlineMultiSpeed {
    fn name(&self) -> &'static str {
        "online-speed"
    }

    fn snapshot(&self) -> crate::PolicySnapshot {
        crate::PolicySnapshot {
            predicted_idle_us: self.gaps.predict().map(|d| d.as_micros()),
            forecast_us: None,
            mode: Some(if self.gaps.observations() == 0 {
                "bootstrap"
            } else {
                "learned"
            }),
        }
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        match event {
            PolicyEvent::IdleStart { t } => {
                self.idle_since = Some(t);
                self.pending = Pending::Gate;
                out.set_timer(t + self.activation + self.jitter);
            }
            PolicyEvent::Timer { t } => self.on_timer(t, disks, out),
            PolicyEvent::RequestArrival { completed_idle, .. } => {
                // `completed_idle` is measured from the node's *observed*
                // last completion (straggler-stretched service included),
                // so a slow disk shortens the learned window instead of
                // silently inflating it the way arrival-to-arrival
                // distance would. `None` means the node never went idle
                // before this arrival: there was no demand window to
                // learn from.
                if let Some(len) = completed_idle {
                    let gap = len.min(Self::WINDOW_CAP);
                    if gap >= self.activation {
                        self.gaps.observe(gap);
                    }
                }
                self.idle_since = None;
                self.pending = Pending::None;
            }
            PolicyEvent::AfterSubmit { .. } => {
                // A request found the node slow: serve it at the current
                // speed and ramp back once the queue drains.
                for (i, d) in disks.iter().enumerate() {
                    if d.current_rpm().is_some_and(|rpm| rpm < self.params.max_rpm) {
                        out.set_rpm(i, self.params.max_rpm, RpmChangePriority::WhenIdle);
                    }
                }
            }
        }
    }
}

/// Hybrid: table-calibrated history-based control until the online
/// demand-window policy has learned the live stream, then online control.
///
/// Both halves see every request arrival (so the online side keeps
/// learning while the table side drives); only the active half's
/// directives reach the hardware. The hand-over happens at an idle-period
/// boundary — the only point where neither half can have a timer armed —
/// so the switch never orphans a pending decision.
#[derive(Debug)]
pub struct HybridPolicy {
    base: HistoryBasedMultiSpeed,
    online: OnlineMultiSpeed,
    /// Observations the online side needs before it takes over.
    threshold: u64,
    use_online: bool,
    /// Discard buffer for the inactive half's (always empty) output.
    scratch: Decision,
}

impl HybridPolicy {
    /// Creates the policy; `rng` must be the node's own policy substream.
    /// The table-calibrated half uses the paper's history-based defaults;
    /// `ewma_alpha`/`confidence` tune the online half.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] unless both halves accept their knobs and
    /// `params` validates.
    pub fn new(
        params: &DiskParams,
        ewma_alpha: f64,
        confidence: f64,
        rng: DetRng,
    ) -> Result<Self, PolicyError> {
        Ok(HybridPolicy {
            base: HistoryBasedMultiSpeed::new(params, 0.5, 0.95)?,
            online: OnlineMultiSpeed::new(params, ewma_alpha, confidence, rng)?,
            threshold: 12,
            use_online: false,
            scratch: Decision::new(),
        })
    }

    /// True once control has passed to the online half.
    pub fn online_active(&self) -> bool {
        self.use_online
    }
}

impl EnergyPolicy for HybridPolicy {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn snapshot(&self) -> crate::PolicySnapshot {
        // Attribute to whichever half currently drives the directives,
        // relabelled so traces show which regime was in control.
        let inner = if self.use_online {
            self.online.snapshot()
        } else {
            self.base.snapshot()
        };
        crate::PolicySnapshot {
            mode: Some(if self.use_online {
                "online"
            } else {
                "table-calibrated"
            }),
            ..inner
        }
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        if let PolicyEvent::RequestArrival { .. } = event {
            // Arrivals feed both learners. Neither half emits directives
            // on arrival, so the inactive half's output is discardable by
            // construction.
            self.scratch.reset();
            if self.use_online {
                self.online.decide(event, disks, out);
                self.base.decide(event, disks, &mut self.scratch);
            } else {
                self.base.decide(event, disks, out);
                self.online.decide(event, disks, &mut self.scratch);
            }
            debug_assert!(self.scratch.directives().is_empty());
            return;
        }
        if let PolicyEvent::IdleStart { .. } = event {
            // Hand over only at an idleness edge: no timer is armed here
            // (the driver cleared it on the preceding arrival), so the
            // online half starts from a clean slate.
            if !self.use_online && self.online.observations() >= self.threshold {
                self.use_online = true;
            }
        }
        if self.use_online {
            self.online.decide(event, disks, out);
        } else {
            self.base.decide(event, disks, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::drive;
    use sdds_disk::DiskState;
    use simkit::StreamId;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn rng() -> DetRng {
        DetRng::for_stream(42, StreamId::Policy).substream("node-0")
    }

    fn idle_start(p: &mut dyn EnergyPolicy, at: SimTime, disks: &mut [Disk]) -> Option<SimTime> {
        drive(p, PolicyEvent::IdleStart { t: at }, disks)
    }

    fn timer(p: &mut dyn EnergyPolicy, at: SimTime, disks: &mut [Disk]) -> Option<SimTime> {
        drive(p, PolicyEvent::Timer { t: at }, disks)
    }

    fn arrival(
        p: &mut dyn EnergyPolicy,
        at: SimTime,
        completed_idle: Option<SimDuration>,
        disks: &mut [Disk],
    ) {
        drive(
            p,
            PolicyEvent::RequestArrival {
                t: at,
                completed_idle,
            },
            disks,
        );
    }

    #[test]
    fn online_spin_down_learns_and_spins_down() {
        let params = DiskParams::paper_single_speed();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = OnlineSpinDown::new(&params, 1.0, 1.0, rng()).unwrap();
        arrival(&mut p, t(0), Some(secs(300)), &mut disks);
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        let wake = timer(&mut p, gate, &mut disks);
        assert_eq!(disks[0].state(), DiskState::SpinningDown);
        assert!(wake.is_some(), "a learned idle end arms a wake timer");
    }

    #[test]
    fn online_spin_down_bootstraps_without_history() {
        let params = DiskParams::paper_single_speed();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = OnlineSpinDown::new(&params, 1.0, 1.0, rng()).unwrap();
        let boot = p.bootstrap();
        assert!(boot >= secs(40) && boot < secs(60), "jitter in range");
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        // No history: the activation timer re-arms to the bootstrap point.
        let at_boot = timer(&mut p, gate, &mut disks).unwrap();
        assert_eq!(at_boot, SimTime::ZERO + boot);
        disks[0].advance_to(at_boot);
        let after = timer(&mut p, at_boot, &mut disks);
        assert_eq!(disks[0].state(), DiskState::SpinningDown);
        assert_eq!(after, None, "bootstrap spin-down wakes on demand only");
    }

    #[test]
    fn online_spin_down_jitter_is_per_node() {
        let params = DiskParams::paper_single_speed();
        let a = OnlineSpinDown::new(
            &params,
            1.0,
            1.0,
            DetRng::for_stream(42, StreamId::Policy).substream("node-0"),
        )
        .unwrap();
        let b = OnlineSpinDown::new(
            &params,
            1.0,
            1.0,
            DetRng::for_stream(42, StreamId::Policy).substream("node-1"),
        )
        .unwrap();
        assert_ne!(a.bootstrap(), b.bootstrap());
    }

    #[test]
    fn online_multi_speed_slows_for_predicted_window() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = OnlineMultiSpeed::new(&params, 1.0, 1.0, rng()).unwrap();
        // An observed 20 s idle gap teaches a 20 s demand window.
        arrival(&mut p, t(0), None, &mut disks);
        arrival(&mut p, t(20_000_000), Some(secs(20)), &mut disks);
        assert_eq!(p.observations(), 1);
        let gate = idle_start(&mut p, t(20_000_000), &mut disks).unwrap();
        disks[0].advance_to(gate);
        let wake = timer(&mut p, gate, &mut disks).unwrap();
        disks[0].advance_to(wake);
        assert!(
            disks[0]
                .current_rpm()
                .is_none_or(|rpm| rpm < params.max_rpm),
            "a 20 s window justifies a slow-down"
        );
        // The wake timer restores full speed before the window closes.
        timer(&mut p, wake, &mut disks);
        disks[0].advance_to(t(40_000_000));
        assert_eq!(disks[0].current_rpm(), Some(params.max_rpm));
    }

    #[test]
    fn online_multi_speed_caps_observed_gaps() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = OnlineMultiSpeed::new(&params, 1.0, 1.0, rng()).unwrap();
        arrival(&mut p, t(0), None, &mut disks);
        // An hour-long lull must be recorded as the window cap, not an hour.
        arrival(&mut p, t(3_600_000_000), Some(secs(3600)), &mut disks);
        assert_eq!(p.gaps.predict(), Some(OnlineMultiSpeed::WINDOW_CAP));
    }

    #[test]
    fn online_multi_speed_learns_observed_idle_not_arrival_distance() {
        // Regression (straggler visibility): arrivals 30 s apart, but the
        // previous request's service was stretched to 20 s by a straggler,
        // so the node only sat idle for the *observed* 10 s. The learner
        // must predict 10 s — learning the 30 s arrival distance would
        // treat stretched service time as exploitable idleness.
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = OnlineMultiSpeed::new(&params, 1.0, 1.0, rng()).unwrap();
        arrival(&mut p, t(0), None, &mut disks);
        arrival(&mut p, t(30_000_000), Some(secs(10)), &mut disks);
        assert_eq!(p.gaps.predict(), Some(secs(10)));
    }

    #[test]
    fn online_multi_speed_ignores_arrivals_with_no_idle_window() {
        // A request landing on a still-busy node (completed_idle = None)
        // carries no demand-window information; previously the raw
        // arrival distance was learned anyway.
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = OnlineMultiSpeed::new(&params, 1.0, 1.0, rng()).unwrap();
        arrival(&mut p, t(0), None, &mut disks);
        arrival(&mut p, t(25_000_000), None, &mut disks);
        assert_eq!(p.observations(), 0);
        assert_eq!(p.gaps.predict(), None);
    }

    #[test]
    fn online_spin_down_learns_observed_idle_not_arrival_distance() {
        // Same straggler-visibility pin for the spin-down learner: the
        // predictor must hold the observed idle length, not the arrival
        // spacing.
        let params = DiskParams::paper_single_speed();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = OnlineSpinDown::new(&params, 1.0, 1.0, rng()).unwrap();
        arrival(&mut p, t(0), None, &mut disks);
        arrival(&mut p, t(30_000_000), Some(secs(10)), &mut disks);
        assert_eq!(p.predictor().predict(), Some(secs(10)));
    }

    #[test]
    fn hybrid_switches_after_threshold() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = HybridPolicy::new(&params, 1.0, 1.0, rng()).unwrap();
        assert!(!p.online_active());
        // Feed enough well-spaced arrivals to cross the threshold.
        for i in 0..13u64 {
            arrival(&mut p, t(i * 2_000_000), Some(secs(1)), &mut disks);
        }
        idle_start(&mut p, t(26_000_000), &mut disks);
        assert!(p.online_active(), "control passes to the online half");
        assert_eq!(p.name(), "hybrid");
    }

    #[test]
    fn hybrid_starts_on_the_table_calibrated_half() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = HybridPolicy::new(&params, 1.0, 1.0, rng()).unwrap();
        // One long observed idle, then an idleness edge: the history-based
        // half drives, arming its activation gate.
        arrival(&mut p, t(0), Some(secs(60)), &mut disks);
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        assert!(!p.online_active());
        assert_eq!(gate, SimTime::ZERO + p.base.activation());
    }
}
