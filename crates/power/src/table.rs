//! The compile-time scheme as a policy: table-driven idle forecasts.
//!
//! The paper's software-directed scheme compiles the application's access
//! pattern into a schedule and derives, for every I/O node, how long each
//! of its idle periods will last. [`TableLookup`] carries exactly those
//! per-node forecasts and consumes one entry per idleness edge — no
//! run-time learning, no timers beyond the forecast's own wake point. It
//! is the proof that the compile-time path is "just another policy" on
//! the unified [`EnergyPolicy`](crate::EnergyPolicy) runtime.

use std::sync::Arc;

use sdds_disk::{Disk, DiskParams, RpmChangePriority, SpindlePowerModel};
use simkit::SimDuration;

use crate::analysis;
use crate::decide::{Decision, EnergyPolicy, PolicyEvent};
use crate::error::PolicyError;

/// Table-driven policy: spends each forecast idle period in the most
/// profitable power state and ramps back just in time for the forecast
/// end.
#[derive(Debug)]
pub struct TableLookup {
    params: DiskParams,
    model: SpindlePowerModel,
    /// Forecast idle-period lengths in microseconds, per node, in
    /// idleness-edge order (the initial at-rest period included).
    forecasts: Arc<Vec<Vec<u64>>>,
    /// This node's row of the table.
    node: usize,
    /// Next unconsumed forecast for this node.
    cursor: usize,
}

impl TableLookup {
    /// Creates the policy for I/O node `node`.
    ///
    /// A node with no row in the table (or a row that runs out) simply
    /// stops acting — a table that under-forecasts degrades to [`NoPm`]
    /// (crate::NoPm) behavior rather than misfiring.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] if `params` fails validation.
    pub fn new(
        params: &DiskParams,
        forecasts: Arc<Vec<Vec<u64>>>,
        node: usize,
    ) -> Result<Self, PolicyError> {
        params.validate()?;
        Ok(TableLookup {
            model: SpindlePowerModel::new(params)?,
            params: params.clone(),
            forecasts,
            node,
            cursor: 0,
        })
    }

    /// Forecasts not yet consumed for this node.
    pub fn remaining_forecasts(&self) -> usize {
        self.forecasts
            .get(self.node)
            .map_or(0, |row| row.len().saturating_sub(self.cursor))
    }
}

impl EnergyPolicy for TableLookup {
    fn name(&self) -> &'static str {
        "table-lookup"
    }

    fn snapshot(&self) -> crate::PolicySnapshot {
        crate::PolicySnapshot {
            predicted_idle_us: None,
            // The next unconsumed table entry: the forecast the coming
            // IdleStart decision will act on.
            forecast_us: self
                .forecasts
                .get(self.node)
                .and_then(|row| row.get(self.cursor))
                .copied(),
            mode: Some("table"),
        }
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        match event {
            PolicyEvent::IdleStart { t } => {
                let forecast = self
                    .forecasts
                    .get(self.node)
                    .and_then(|row| row.get(self.cursor))
                    .copied();
                self.cursor += 1;
                let Some(us) = forecast else {
                    return;
                };
                let idle = SimDuration::from_micros(us);
                let current = disks
                    .first()
                    .and_then(|d| d.current_rpm())
                    .unwrap_or(self.params.max_rpm);
                if self.params.min_rpm < self.params.max_rpm {
                    // Multi-speed hardware: pick the break-even level for
                    // the forecast window and ramp back in time for its
                    // end.
                    let best = analysis::best_level(&self.params, &self.model, current, idle);
                    if best == current {
                        return;
                    }
                    for i in 0..disks.len() {
                        out.set_rpm(i, best, RpmChangePriority::Immediate);
                    }
                    if best < self.params.max_rpm {
                        let ramp_back = self.params.rpm_change_time(best, self.params.max_rpm);
                        out.set_timer(
                            t + idle
                                .saturating_sub(ramp_back)
                                .max(SimDuration::from_millis(1)),
                        );
                    }
                } else if analysis::spin_down_pays_off(&self.params, &self.model, current, idle) {
                    for i in 0..disks.len() {
                        out.spin_down(i);
                    }
                    let wake = idle
                        .saturating_sub(self.params.spin_up_time)
                        .max(self.params.spin_down_time);
                    out.set_timer(t + wake);
                }
            }
            PolicyEvent::Timer { .. } => {
                // The forecast window is closing: restore full readiness.
                if disks.iter().any(|d| d.current_rpm().is_none()) {
                    for i in 0..disks.len() {
                        out.spin_up(i);
                    }
                } else {
                    for (i, d) in disks.iter().enumerate() {
                        if d.current_rpm().is_some_and(|rpm| rpm < self.params.max_rpm) {
                            out.set_rpm(i, self.params.max_rpm, RpmChangePriority::Immediate);
                        }
                    }
                }
                out.clear_timer();
            }
            PolicyEvent::RequestArrival { .. } => {
                // Forecast miss (early arrival): the driver has cancelled
                // the wake timer; standby disks spin up on demand.
            }
            PolicyEvent::AfterSubmit { .. } => {
                // Serve a mispredicted burst at the current speed, ramping
                // back once the queues drain.
                for (i, d) in disks.iter().enumerate() {
                    if d.current_rpm().is_some_and(|rpm| rpm < self.params.max_rpm) {
                        out.set_rpm(i, self.params.max_rpm, RpmChangePriority::WhenIdle);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::drive;
    use sdds_disk::DiskState;
    use simkit::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn table(rows: Vec<Vec<u64>>) -> Arc<Vec<Vec<u64>>> {
        Arc::new(rows)
    }

    #[test]
    fn forecast_long_idle_slows_multi_speed_node() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        // One forecast: a 60 s idle period.
        let mut p = TableLookup::new(&params, table(vec![vec![60_000_000]]), 0).unwrap();
        let wake = drive(&mut p, PolicyEvent::IdleStart { t: t(0) }, &mut disks).unwrap();
        assert!(matches!(disks[0].state(), DiskState::ChangingSpeed { .. }));
        assert!(wake < t(60_000_000), "ramp-back precedes the forecast end");
        disks[0].advance_to(wake);
        drive(&mut p, PolicyEvent::Timer { t: wake }, &mut disks);
        disks[0].advance_to(t(60_000_000));
        assert_eq!(disks[0].current_rpm(), Some(params.max_rpm));
        assert_eq!(p.remaining_forecasts(), 0);
    }

    #[test]
    fn forecast_long_idle_spins_down_single_speed_node() {
        let params = DiskParams::paper_single_speed();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = TableLookup::new(&params, table(vec![vec![300_000_000]]), 0).unwrap();
        let wake = drive(&mut p, PolicyEvent::IdleStart { t: t(0) }, &mut disks).unwrap();
        assert_eq!(disks[0].state(), DiskState::SpinningDown);
        disks[0].advance_to(wake);
        drive(&mut p, PolicyEvent::Timer { t: wake }, &mut disks);
        disks[0].advance_to(t(300_000_000));
        assert!(matches!(disks[0].state(), DiskState::Idle { .. }));
    }

    #[test]
    fn short_forecast_does_nothing() {
        let params = DiskParams::paper_single_speed();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = TableLookup::new(&params, table(vec![vec![100_000]]), 0).unwrap();
        assert_eq!(
            drive(&mut p, PolicyEvent::IdleStart { t: t(0) }, &mut disks),
            None
        );
        assert_eq!(disks[0].counters().spin_downs, 0);
    }

    #[test]
    fn exhausted_table_degrades_to_no_pm() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        let mut p = TableLookup::new(&params, table(vec![vec![]]), 0).unwrap();
        assert_eq!(
            drive(&mut p, PolicyEvent::IdleStart { t: t(0) }, &mut disks),
            None
        );
        assert_eq!(disks[0].counters().rpm_changes, 0);
        // A node missing from the table entirely behaves the same.
        let mut q = TableLookup::new(&params, table(vec![]), 3).unwrap();
        assert_eq!(
            drive(&mut q, PolicyEvent::IdleStart { t: t(0) }, &mut disks),
            None
        );
    }

    #[test]
    fn forecasts_are_consumed_in_order() {
        let params = DiskParams::paper_defaults();
        let mut disks = vec![Disk::new(params.clone()).unwrap()];
        // First idle period is short (no action), second is long.
        let mut p = TableLookup::new(&params, table(vec![vec![100_000, 60_000_000]]), 0).unwrap();
        assert_eq!(p.remaining_forecasts(), 2);
        drive(&mut p, PolicyEvent::IdleStart { t: t(0) }, &mut disks);
        assert_eq!(disks[0].counters().rpm_changes, 0);
        drive(
            &mut p,
            PolicyEvent::RequestArrival {
                t: t(200_000),
                completed_idle: Some(SimDuration::from_micros(200_000)),
            },
            &mut disks,
        );
        drive(&mut p, PolicyEvent::IdleStart { t: t(300_000) }, &mut disks);
        assert!(matches!(disks[0].state(), DiskState::ChangingSpeed { .. }));
        assert_eq!(p.remaining_forecasts(), 0);
    }
}
