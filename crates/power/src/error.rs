//! Typed validation errors for power-policy configurations.

use sdds_disk::{DiskError, Rpm};
use std::fmt;

/// A violated power-policy constraint.
///
/// Produced by [`PolicyKind::validate`](crate::PolicyKind::validate) and
/// the policy constructors; [`fmt::Display`] renders the one-line form
/// used by the CLI, and [`std::error::Error::source`] exposes the wrapped
/// [`DiskError`] when disk parameters are at fault.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PolicyError {
    /// A numeric tuning knob is outside its documented range.
    Knob {
        /// Display name of the policy ("prediction-based", ...).
        policy: &'static str,
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable range constraint, e.g. `"(0, 1]"`.
        constraint: &'static str,
    },
    /// A multi-speed policy was paired with a single-speed disk.
    NeedsMultiSpeed {
        /// Display name of the policy.
        policy: &'static str,
        /// The disk's (single) minimum speed.
        min_rpm: Rpm,
        /// The disk's maximum speed.
        max_rpm: Rpm,
    },
    /// A node was configured with zero disks.
    NoDisks,
    /// The underlying disk parameters are invalid.
    Disk(DiskError),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Knob {
                policy,
                field,
                value,
                constraint,
            } => write!(
                f,
                "policy `{policy}`: `{field}` must be in {constraint}, got {value}"
            ),
            PolicyError::NeedsMultiSpeed {
                policy,
                min_rpm,
                max_rpm,
            } => write!(
                f,
                "policy `{policy}` needs a multi-speed disk, but the disk only spins at \
                 {min_rpm}..={max_rpm}"
            ),
            PolicyError::NoDisks => write!(f, "an I/O node needs at least one disk"),
            PolicyError::Disk(e) => write!(f, "invalid disk parameters: {e}"),
        }
    }
}

impl std::error::Error for PolicyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolicyError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for PolicyError {
    fn from(e: DiskError) -> Self {
        PolicyError::Disk(e)
    }
}
