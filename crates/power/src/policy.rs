//! The power-policy trait and the configuration enum for building policies.

use sdds_disk::{Disk, DiskParams};
use simkit::{SimDuration, SimTime};

use crate::{
    HistoryBasedMultiSpeed, NoPm, PolicyError, PredictiveSpinDown, SimpleSpinDown,
    StaggeredMultiSpeed,
};

/// A disk power-management policy, operating on all member disks of one
/// I/O node together.
///
/// The paper manages power "at the I/O node level ... if spinning down an
/// I/O node, we spin down all disks attached to it" (§II) — so every hook
/// receives the node's whole disk array. Policies are event-driven: the
/// [`PoweredArray`](crate::PoweredArray) driver invokes these hooks and
/// maintains a single pending timer per policy. Each hook may control the
/// disks (spin them down/up, change their speed) and may return the next
/// instant at which [`PowerPolicy::on_timer`] should fire; returning
/// `None` leaves no timer pending. The driver cancels the timer
/// automatically when a request arrives.
pub trait PowerPolicy: std::fmt::Debug + Send {
    /// Short name used in reports ("simple", "history-based", ...).
    fn name(&self) -> &'static str;

    /// The node just became idle — no member disk has outstanding work —
    /// at `t`.
    fn on_idle_start(&mut self, t: SimTime, disks: &mut [Disk]) -> Option<SimTime>;

    /// A timer previously returned by a hook fired at `t`.
    fn on_timer(&mut self, t: SimTime, disks: &mut [Disk]) -> Option<SimTime>;

    /// A request is about to be submitted to one of the disks at `t`.
    ///
    /// `completed_idle` is the length of the node-level idle period this
    /// arrival terminates, or `None` if the node had outstanding work.
    /// Called *before* the request is handed to the disk.
    fn on_request_arrival(
        &mut self,
        t: SimTime,
        completed_idle: Option<SimDuration>,
        disks: &mut [Disk],
    );

    /// A request has just been handed to a disk at `t`.
    ///
    /// Useful for speed decisions that must not delay the request that
    /// triggered them. The default does nothing.
    fn after_submit(&mut self, t: SimTime, disks: &mut [Disk]) {
        let _ = (t, disks);
    }
}

/// Returns `true` when every disk of the node is idle at a stable speed
/// with no outstanding work — the only state in which node-level
/// transitions may start.
pub(crate) fn node_idle(disks: &[Disk]) -> bool {
    disks
        .iter()
        .all(|d| d.outstanding() == 0 && d.current_rpm().is_some())
}

/// Declarative policy configuration, convertible into a boxed policy for a
/// given disk.
///
/// This is what experiment configurations store; it keeps the policy choice
/// serializable and `Clone` while the policies themselves own mutable
/// predictor state.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// No power management (the paper's Default Scheme).
    NoPm,
    /// Fixed-timeout spin-down.
    SimpleSpinDown {
        /// Idleness to wait before spinning down.
        timeout: SimDuration,
    },
    /// Prediction-based spin-down.
    PredictiveSpinDown {
        /// EWMA weight for new idle observations in `(0, 1]`.
        ewma_alpha: f64,
        /// Safety factor applied to the predicted idle length before the
        /// break-even test, in `(0, 1]`; lower is more conservative.
        confidence: f64,
    },
    /// History-based (prediction-driven) multi-speed control.
    HistoryBasedMultiSpeed {
        /// EWMA weight for new idle observations in `(0, 1]`.
        ewma_alpha: f64,
        /// Safety factor in `(0, 1]` applied to predictions.
        confidence: f64,
    },
    /// Staggered multi-speed descent.
    StaggeredMultiSpeed {
        /// Idleness to wait before each further one-level slow-down.
        step_timeout: SimDuration,
    },
}

impl PolicyKind {
    /// The simple strategy with a timeout tuned for this simulator's
    /// workloads "based on some preliminary experiments", exactly as §V-A
    /// tunes it for the paper's testbed (50 ms there). The tuned value
    /// sits above the spin-up time: with a shorter timeout, one node's
    /// 16 s spin-up stalls the clients long enough to time out the other
    /// nodes, and the array falls into a phase-locked spin oscillation —
    /// the degenerate regime whose avoidance the paper attributes to
    /// timeout tuning.
    pub fn simple_spin_down_default() -> Self {
        PolicyKind::SimpleSpinDown {
            timeout: SimDuration::from_secs(20),
        }
    }

    /// The prediction-based strategy with EWMA prediction.
    pub fn predictive_spin_down_default() -> Self {
        PolicyKind::PredictiveSpinDown {
            ewma_alpha: 0.5,
            confidence: 0.9,
        }
    }

    /// The history-based multi-speed strategy with EWMA prediction.
    pub fn history_based_default() -> Self {
        PolicyKind::HistoryBasedMultiSpeed {
            ewma_alpha: 0.5,
            confidence: 0.95,
        }
    }

    /// The staggered strategy with a step timeout tuned for this
    /// simulator's workloads (the paper uses 50 ms on its testbed and
    /// notes the parameters "can be tuned to maximize energy savings under
    /// a given performance degradation bound", §II).
    pub fn staggered_default() -> Self {
        PolicyKind::StaggeredMultiSpeed {
            step_timeout: SimDuration::from_millis(500),
        }
    }

    /// All four power-saving strategies with default tuning, in the order
    /// the paper's figures present them.
    pub fn paper_strategies() -> Vec<PolicyKind> {
        vec![
            Self::simple_spin_down_default(),
            Self::predictive_spin_down_default(),
            Self::history_based_default(),
            Self::staggered_default(),
        ]
    }

    /// The display name of the built policy.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::NoPm => "default",
            PolicyKind::SimpleSpinDown { .. } => "simple",
            PolicyKind::PredictiveSpinDown { .. } => "prediction-based",
            PolicyKind::HistoryBasedMultiSpeed { .. } => "history-based",
            PolicyKind::StaggeredMultiSpeed { .. } => "staggered",
        }
    }

    /// Returns `true` if this policy requires a multi-speed disk to be
    /// useful.
    pub fn needs_multi_speed(&self) -> bool {
        matches!(
            self,
            PolicyKind::HistoryBasedMultiSpeed { .. } | PolicyKind::StaggeredMultiSpeed { .. }
        )
    }

    /// Checks that this policy's tuning knobs are in range and that the
    /// policy is compatible with disks built from `params`.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] when a knob is outside its documented
    /// range, when a multi-speed policy is paired with a single-speed
    /// disk, or when `params` itself is invalid.
    pub fn validate(&self, params: &DiskParams) -> Result<(), PolicyError> {
        params.validate()?;
        let knobs: &[(&'static str, f64)] = match self {
            PolicyKind::NoPm | PolicyKind::SimpleSpinDown { .. } => &[],
            PolicyKind::PredictiveSpinDown {
                ewma_alpha,
                confidence,
            }
            | PolicyKind::HistoryBasedMultiSpeed {
                ewma_alpha,
                confidence,
            } => &[("ewma_alpha", *ewma_alpha), ("confidence", *confidence)],
            PolicyKind::StaggeredMultiSpeed { .. } => &[],
        };
        for &(field, value) in knobs {
            if !value.is_finite() || value <= 0.0 || value > 1.0 {
                return Err(PolicyError::Knob {
                    policy: self.name(),
                    field,
                    value,
                    constraint: "(0, 1]",
                });
            }
        }
        if self.needs_multi_speed() && params.min_rpm == params.max_rpm {
            return Err(PolicyError::NeedsMultiSpeed {
                policy: self.name(),
                min_rpm: params.min_rpm,
                max_rpm: params.max_rpm,
            });
        }
        Ok(())
    }

    /// Builds the policy for disks with the given parameters.
    ///
    /// # Errors
    ///
    /// Returns the [`PolicyError`] produced by [`PolicyKind::validate`]
    /// if the configuration is rejected.
    pub fn build(&self, params: &DiskParams) -> Result<Box<dyn PowerPolicy>, PolicyError> {
        self.validate(params)?;
        Ok(match *self {
            PolicyKind::NoPm => Box::new(NoPm::new()),
            PolicyKind::SimpleSpinDown { timeout } => Box::new(SimpleSpinDown::new(timeout)),
            PolicyKind::PredictiveSpinDown {
                ewma_alpha,
                confidence,
            } => Box::new(PredictiveSpinDown::new(params, ewma_alpha, confidence)?),
            PolicyKind::HistoryBasedMultiSpeed {
                ewma_alpha,
                confidence,
            } => Box::new(HistoryBasedMultiSpeed::new(params, ewma_alpha, confidence)?),
            PolicyKind::StaggeredMultiSpeed { step_timeout } => {
                Box::new(StaggeredMultiSpeed::new(params, step_timeout)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(PolicyKind::NoPm.name(), "default");
        assert_eq!(PolicyKind::simple_spin_down_default().name(), "simple");
        assert_eq!(
            PolicyKind::predictive_spin_down_default().name(),
            "prediction-based"
        );
        assert_eq!(PolicyKind::history_based_default().name(), "history-based");
        assert_eq!(PolicyKind::staggered_default().name(), "staggered");
    }

    #[test]
    fn paper_strategies_in_figure_order() {
        let names: Vec<_> = PolicyKind::paper_strategies()
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(
            names,
            vec!["simple", "prediction-based", "history-based", "staggered"]
        );
    }

    #[test]
    fn build_produces_matching_names() {
        let params = DiskParams::paper_defaults();
        for kind in PolicyKind::paper_strategies() {
            let policy = kind.build(&params).unwrap();
            assert_eq!(policy.name(), kind.name());
        }
        assert_eq!(PolicyKind::NoPm.build(&params).unwrap().name(), "default");
    }

    #[test]
    fn multi_speed_flag() {
        assert!(!PolicyKind::NoPm.needs_multi_speed());
        assert!(!PolicyKind::simple_spin_down_default().needs_multi_speed());
        assert!(PolicyKind::history_based_default().needs_multi_speed());
        assert!(PolicyKind::staggered_default().needs_multi_speed());
    }

    #[test]
    fn node_idle_requires_all_idle() {
        use sdds_disk::{DiskRequest, RequestKind};
        use simkit::SimTime;
        let params = DiskParams::paper_defaults();
        let mut disks = vec![
            Disk::new(params.clone()).unwrap(),
            Disk::new(params).unwrap(),
        ];
        assert!(node_idle(&disks));
        disks[1].submit(
            DiskRequest::new(0, RequestKind::Read, 0, 60_000),
            SimTime::ZERO,
        );
        assert!(!node_idle(&disks));
    }
}
