//! Policy configuration: the [`PolicyKind`] enum and its builder.
//!
//! The decision trait itself lives in [`crate::decide`]; this module keeps
//! the serializable, `Clone`-able configuration layer that experiment
//! configs store and that the storage layer turns into live
//! [`EnergyPolicy`](crate::EnergyPolicy) objects per I/O node.

use std::sync::Arc;

use sdds_disk::DiskParams;
use simkit::{DetRng, SimDuration, StreamId};

use crate::decide::EnergyPolicy;
use crate::online::{HybridPolicy, OnlineMultiSpeed, OnlineSpinDown};
use crate::table::TableLookup;
use crate::{
    HistoryBasedMultiSpeed, NoPm, PolicyError, PredictiveSpinDown, SimpleSpinDown,
    StaggeredMultiSpeed,
};

/// Per-node construction context handed to [`PolicyKind::build`].
///
/// Policies that carry randomness or per-node state (the online family,
/// table lookups) need to know *which* node they manage so that every
/// node gets an independent, deterministically derived stream and table
/// slice. Table-driven and paper policies ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyContext {
    /// Index of the I/O node this policy will manage.
    pub node: usize,
}

impl PolicyContext {
    /// Context for I/O node `node`.
    #[must_use]
    pub fn for_node(node: usize) -> Self {
        PolicyContext { node }
    }
}

/// Declarative policy configuration, convertible into a boxed policy for a
/// given disk.
///
/// This is what experiment configurations store; it keeps the policy choice
/// serializable and `Clone` while the policies themselves own mutable
/// predictor state.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// No power management (the paper's Default Scheme).
    NoPm,
    /// Fixed-timeout spin-down.
    SimpleSpinDown {
        /// Idleness to wait before spinning down.
        timeout: SimDuration,
    },
    /// Prediction-based spin-down.
    PredictiveSpinDown {
        /// EWMA weight for new idle observations in `(0, 1]`.
        ewma_alpha: f64,
        /// Safety factor applied to the predicted idle length before the
        /// break-even test, in `(0, 1]`; lower is more conservative.
        confidence: f64,
    },
    /// History-based (prediction-driven) multi-speed control.
    HistoryBasedMultiSpeed {
        /// EWMA weight for new idle observations in `(0, 1]`.
        ewma_alpha: f64,
        /// Safety factor in `(0, 1]` applied to predictions.
        confidence: f64,
    },
    /// Staggered multi-speed descent.
    StaggeredMultiSpeed {
        /// Idleness to wait before each further one-level slow-down.
        step_timeout: SimDuration,
    },
    /// Online spin-down: learns idle-period lengths from the live request
    /// stream (no compile-time table), with a seeded per-node bootstrap.
    OnlineSpinDown {
        /// EWMA weight for new idle observations in `(0, 1]`.
        ewma_alpha: f64,
        /// Safety factor in `(0, 1]` applied to predictions.
        confidence: f64,
        /// Run seed; per-node jitter is derived from its
        /// [`StreamId::Policy`] stream.
        seed: u64,
    },
    /// Online multi-speed: demand-window speed selection from the observed
    /// inter-arrival gaps.
    OnlineMultiSpeed {
        /// EWMA weight for new gap observations in `(0, 1]`.
        ewma_alpha: f64,
        /// Safety factor in `(0, 1]` applied to predictions.
        confidence: f64,
        /// Run seed; per-node jitter is derived from its
        /// [`StreamId::Policy`] stream.
        seed: u64,
    },
    /// Hybrid: starts from the table-calibrated history-based policy and
    /// hands control to the online demand-window policy once it has
    /// observed enough of the live stream.
    Hybrid {
        /// EWMA weight for the online side's gap observations in `(0, 1]`.
        ewma_alpha: f64,
        /// Safety factor in `(0, 1]` applied to online predictions.
        confidence: f64,
        /// Run seed; per-node jitter is derived from its
        /// [`StreamId::Policy`] stream.
        seed: u64,
    },
    /// Pure table lookup: per-node idle-period forecasts distilled from a
    /// compiled schedule drive spin-down/speed decisions with no run-time
    /// learning — the compile-time scheme expressed as just another
    /// [`EnergyPolicy`].
    TableLookup {
        /// Forecast idle-period lengths in microseconds, indexed by node
        /// then by idle-period ordinal.
        forecasts: Arc<Vec<Vec<u64>>>,
    },
}

impl PolicyKind {
    /// The simple strategy with a timeout tuned for this simulator's
    /// workloads "based on some preliminary experiments", exactly as §V-A
    /// tunes it for the paper's testbed (50 ms there). The tuned value
    /// sits above the spin-up time: with a shorter timeout, one node's
    /// 16 s spin-up stalls the clients long enough to time out the other
    /// nodes, and the array falls into a phase-locked spin oscillation —
    /// the degenerate regime whose avoidance the paper attributes to
    /// timeout tuning.
    pub fn simple_spin_down_default() -> Self {
        PolicyKind::SimpleSpinDown {
            timeout: SimDuration::from_secs(20),
        }
    }

    /// The prediction-based strategy with EWMA prediction.
    pub fn predictive_spin_down_default() -> Self {
        PolicyKind::PredictiveSpinDown {
            ewma_alpha: 0.5,
            confidence: 0.9,
        }
    }

    /// The history-based multi-speed strategy with EWMA prediction.
    pub fn history_based_default() -> Self {
        PolicyKind::HistoryBasedMultiSpeed {
            ewma_alpha: 0.5,
            confidence: 0.95,
        }
    }

    /// The staggered strategy with a step timeout tuned for this
    /// simulator's workloads (the paper uses 50 ms on its testbed and
    /// notes the parameters "can be tuned to maximize energy savings under
    /// a given performance degradation bound", §II).
    pub fn staggered_default() -> Self {
        PolicyKind::StaggeredMultiSpeed {
            step_timeout: SimDuration::from_millis(500),
        }
    }

    /// The online spin-down policy with default tuning.
    pub fn online_spin_down_default(seed: u64) -> Self {
        PolicyKind::OnlineSpinDown {
            ewma_alpha: 0.5,
            confidence: 0.9,
            seed,
        }
    }

    /// The online demand-window multi-speed policy with default tuning.
    pub fn online_multi_speed_default(seed: u64) -> Self {
        PolicyKind::OnlineMultiSpeed {
            ewma_alpha: 0.4,
            confidence: 0.9,
            seed,
        }
    }

    /// The hybrid (table-then-online) policy with default tuning.
    pub fn hybrid_default(seed: u64) -> Self {
        PolicyKind::Hybrid {
            ewma_alpha: 0.4,
            confidence: 0.9,
            seed,
        }
    }

    /// All four power-saving strategies with default tuning, in the order
    /// the paper's figures present them.
    pub fn paper_strategies() -> Vec<PolicyKind> {
        vec![
            Self::simple_spin_down_default(),
            Self::predictive_spin_down_default(),
            Self::history_based_default(),
            Self::staggered_default(),
        ]
    }

    /// The display name of the built policy.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::NoPm => "default",
            PolicyKind::SimpleSpinDown { .. } => "simple",
            PolicyKind::PredictiveSpinDown { .. } => "prediction-based",
            PolicyKind::HistoryBasedMultiSpeed { .. } => "history-based",
            PolicyKind::StaggeredMultiSpeed { .. } => "staggered",
            PolicyKind::OnlineSpinDown { .. } => "online",
            PolicyKind::OnlineMultiSpeed { .. } => "online-speed",
            PolicyKind::Hybrid { .. } => "hybrid",
            PolicyKind::TableLookup { .. } => "table-lookup",
        }
    }

    /// Returns `true` if this policy requires a multi-speed disk to be
    /// useful.
    pub fn needs_multi_speed(&self) -> bool {
        matches!(
            self,
            PolicyKind::HistoryBasedMultiSpeed { .. }
                | PolicyKind::StaggeredMultiSpeed { .. }
                | PolicyKind::OnlineMultiSpeed { .. }
                | PolicyKind::Hybrid { .. }
        )
    }

    /// Checks that this policy's tuning knobs are in range and that the
    /// policy is compatible with disks built from `params`.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] when a knob is outside its documented
    /// range, when a multi-speed policy is paired with a single-speed
    /// disk, or when `params` itself is invalid.
    pub fn validate(&self, params: &DiskParams) -> Result<(), PolicyError> {
        params.validate()?;
        let knobs: &[(&'static str, f64)] = match self {
            PolicyKind::NoPm
            | PolicyKind::SimpleSpinDown { .. }
            | PolicyKind::TableLookup { .. } => &[],
            PolicyKind::PredictiveSpinDown {
                ewma_alpha,
                confidence,
            }
            | PolicyKind::HistoryBasedMultiSpeed {
                ewma_alpha,
                confidence,
            }
            | PolicyKind::OnlineSpinDown {
                ewma_alpha,
                confidence,
                ..
            }
            | PolicyKind::OnlineMultiSpeed {
                ewma_alpha,
                confidence,
                ..
            }
            | PolicyKind::Hybrid {
                ewma_alpha,
                confidence,
                ..
            } => &[("ewma_alpha", *ewma_alpha), ("confidence", *confidence)],
            PolicyKind::StaggeredMultiSpeed { .. } => &[],
        };
        for &(field, value) in knobs {
            if !value.is_finite() || value <= 0.0 || value > 1.0 {
                return Err(PolicyError::Knob {
                    policy: self.name(),
                    field,
                    value,
                    constraint: "(0, 1]",
                });
            }
        }
        if self.needs_multi_speed() && params.min_rpm == params.max_rpm {
            return Err(PolicyError::NeedsMultiSpeed {
                policy: self.name(),
                min_rpm: params.min_rpm,
                max_rpm: params.max_rpm,
            });
        }
        Ok(())
    }

    /// The per-node policy RNG: the [`StreamId::Policy`] stream of `seed`,
    /// narrowed to the node's own named substream.
    fn node_rng(seed: u64, node: usize) -> DetRng {
        DetRng::for_stream(seed, StreamId::Policy).substream(&format!("node-{node}"))
    }

    /// Builds the policy for disks with the given parameters, for the node
    /// identified by `ctx`.
    ///
    /// # Errors
    ///
    /// Returns the [`PolicyError`] produced by [`PolicyKind::validate`]
    /// if the configuration is rejected.
    pub fn build(
        &self,
        params: &DiskParams,
        ctx: PolicyContext,
    ) -> Result<Box<dyn EnergyPolicy>, PolicyError> {
        self.validate(params)?;
        Ok(match *self {
            PolicyKind::NoPm => Box::new(NoPm::new()),
            PolicyKind::SimpleSpinDown { timeout } => Box::new(SimpleSpinDown::new(timeout)),
            PolicyKind::PredictiveSpinDown {
                ewma_alpha,
                confidence,
            } => Box::new(PredictiveSpinDown::new(params, ewma_alpha, confidence)?),
            PolicyKind::HistoryBasedMultiSpeed {
                ewma_alpha,
                confidence,
            } => Box::new(HistoryBasedMultiSpeed::new(params, ewma_alpha, confidence)?),
            PolicyKind::StaggeredMultiSpeed { step_timeout } => {
                Box::new(StaggeredMultiSpeed::new(params, step_timeout)?)
            }
            PolicyKind::OnlineSpinDown {
                ewma_alpha,
                confidence,
                seed,
            } => Box::new(OnlineSpinDown::new(
                params,
                ewma_alpha,
                confidence,
                Self::node_rng(seed, ctx.node),
            )?),
            PolicyKind::OnlineMultiSpeed {
                ewma_alpha,
                confidence,
                seed,
            } => Box::new(OnlineMultiSpeed::new(
                params,
                ewma_alpha,
                confidence,
                Self::node_rng(seed, ctx.node),
            )?),
            PolicyKind::Hybrid {
                ewma_alpha,
                confidence,
                seed,
            } => Box::new(HybridPolicy::new(
                params,
                ewma_alpha,
                confidence,
                Self::node_rng(seed, ctx.node),
            )?),
            PolicyKind::TableLookup { ref forecasts } => {
                Box::new(TableLookup::new(params, forecasts.clone(), ctx.node)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(PolicyKind::NoPm.name(), "default");
        assert_eq!(PolicyKind::simple_spin_down_default().name(), "simple");
        assert_eq!(
            PolicyKind::predictive_spin_down_default().name(),
            "prediction-based"
        );
        assert_eq!(PolicyKind::history_based_default().name(), "history-based");
        assert_eq!(PolicyKind::staggered_default().name(), "staggered");
        assert_eq!(PolicyKind::online_spin_down_default(1).name(), "online");
        assert_eq!(
            PolicyKind::online_multi_speed_default(1).name(),
            "online-speed"
        );
        assert_eq!(PolicyKind::hybrid_default(1).name(), "hybrid");
        assert_eq!(
            PolicyKind::TableLookup {
                forecasts: Arc::new(Vec::new())
            }
            .name(),
            "table-lookup"
        );
    }

    #[test]
    fn paper_strategies_in_figure_order() {
        let names: Vec<_> = PolicyKind::paper_strategies()
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(
            names,
            vec!["simple", "prediction-based", "history-based", "staggered"]
        );
    }

    #[test]
    fn build_produces_matching_names() {
        let params = DiskParams::paper_defaults();
        let ctx = PolicyContext::default();
        for kind in PolicyKind::paper_strategies() {
            let policy = kind.build(&params, ctx).unwrap();
            assert_eq!(policy.name(), kind.name());
        }
        assert_eq!(
            PolicyKind::NoPm.build(&params, ctx).unwrap().name(),
            "default"
        );
        for kind in [
            PolicyKind::online_spin_down_default(7),
            PolicyKind::online_multi_speed_default(7),
            PolicyKind::hybrid_default(7),
            PolicyKind::TableLookup {
                forecasts: Arc::new(vec![vec![1_000_000]]),
            },
        ] {
            let policy = kind.build(&params, ctx).unwrap();
            assert_eq!(policy.name(), kind.name());
        }
    }

    #[test]
    fn multi_speed_flag() {
        assert!(!PolicyKind::NoPm.needs_multi_speed());
        assert!(!PolicyKind::simple_spin_down_default().needs_multi_speed());
        assert!(PolicyKind::history_based_default().needs_multi_speed());
        assert!(PolicyKind::staggered_default().needs_multi_speed());
        assert!(!PolicyKind::online_spin_down_default(1).needs_multi_speed());
        assert!(PolicyKind::online_multi_speed_default(1).needs_multi_speed());
        assert!(PolicyKind::hybrid_default(1).needs_multi_speed());
    }

    #[test]
    fn online_knobs_are_validated() {
        let params = DiskParams::paper_defaults();
        let bad = PolicyKind::OnlineMultiSpeed {
            ewma_alpha: 0.0,
            confidence: 0.9,
            seed: 1,
        };
        assert!(bad.validate(&params).is_err());
        let bad = PolicyKind::Hybrid {
            ewma_alpha: 0.5,
            confidence: 2.0,
            seed: 1,
        };
        assert!(bad.validate(&params).is_err());
    }

    #[test]
    fn online_multi_speed_rejects_single_speed_disks() {
        let params = DiskParams::paper_single_speed();
        let err = PolicyKind::online_multi_speed_default(3)
            .validate(&params)
            .unwrap_err();
        assert!(err.to_string().contains("multi-speed"), "{err}");
    }

    #[test]
    fn node_context_separates_online_streams() {
        // Two nodes built from the same seed must not share jitter draws;
        // the same node rebuilt must. (Observed through Debug formatting,
        // which includes the derived bootstrap deadline.)
        let params = DiskParams::paper_defaults();
        let kind = PolicyKind::online_spin_down_default(11);
        let a = format!(
            "{:?}",
            kind.build(&params, PolicyContext::for_node(0)).unwrap()
        );
        let b = format!(
            "{:?}",
            kind.build(&params, PolicyContext::for_node(1)).unwrap()
        );
        let a2 = format!(
            "{:?}",
            kind.build(&params, PolicyContext::for_node(0)).unwrap()
        );
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
