//! Spin-down policies: simple (fixed timeout) and prediction-based.

use sdds_disk::{Disk, DiskParams, SpindlePowerModel};
use simkit::{SimDuration, SimTime};

use crate::analysis;
use crate::decide::{node_idle, Decision, EnergyPolicy, PolicyEvent};
use crate::error::PolicyError;
use crate::predictor::IdlePredictor;

/// Rejects a tuning knob outside `(0, 1]` with a typed error.
pub(crate) fn check_unit_knob(
    policy: &'static str,
    field: &'static str,
    value: f64,
) -> Result<(), PolicyError> {
    if !value.is_finite() || value <= 0.0 || value > 1.0 {
        return Err(PolicyError::Knob {
            policy,
            field,
            value,
            constraint: "(0, 1]",
        });
    }
    Ok(())
}

/// The paper's *Simple* strategy (§II, Fig. 2): transition the I/O node to
/// the spin-down mode after it stays idle for a fixed timeout, and back to
/// active with the next request (the disk model performs the spin-up
/// automatically when a request arrives in standby).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleSpinDown {
    timeout: SimDuration,
}

impl SimpleSpinDown {
    /// Creates the policy with the given idleness timeout (the paper tunes
    /// this "based on some preliminary experiments", §V-A).
    pub fn new(timeout: SimDuration) -> Self {
        SimpleSpinDown { timeout }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

impl EnergyPolicy for SimpleSpinDown {
    fn name(&self) -> &'static str {
        "simple"
    }

    fn snapshot(&self) -> crate::PolicySnapshot {
        crate::PolicySnapshot {
            mode: Some("fixed-timeout"),
            ..crate::PolicySnapshot::default()
        }
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        match event {
            PolicyEvent::IdleStart { t } => out.set_timer(t + self.timeout),
            PolicyEvent::Timer { .. } => {
                if node_idle(disks) {
                    for i in 0..disks.len() {
                        out.spin_down(i);
                    }
                }
                out.clear_timer();
            }
            // The driver cancels the pending timer on arrival; the disks
            // spin up on their own as requests reach them.
            PolicyEvent::RequestArrival { .. } | PolicyEvent::AfterSubmit { .. } => {}
        }
    }
}

/// The paper's *Prediction Based* strategy (§II): predict the durations of
/// idle periods "by assuming that successive idle periods exhibit similar
/// behavior", spin the node down as soon as the prediction justifies it,
/// and transition back ahead of time to hide the spin-up latency.
///
/// Predictions are *gated*: the policy waits for an activation timeout
/// before consulting its history, and its history tracks only idle periods
/// that got past the gate. Dense request streams (idle periods of a few
/// milliseconds) therefore never trigger predictions; the gate duration is
/// one of the tunable parameters (`y`) of §II.
#[derive(Debug)]
pub struct PredictiveSpinDown {
    params: DiskParams,
    model: SpindlePowerModel,
    predictor: IdlePredictor,
    confidence: f64,
    /// Idleness that must elapse before a prediction is attempted; also
    /// the minimum idle length that enters the history.
    activation: SimDuration,
    /// When the current idle period began (valid while idle).
    idle_since: Option<SimTime>,
}

impl PredictiveSpinDown {
    /// Creates the policy.
    ///
    /// `ewma_alpha` weights new observations of gated idle periods (1.0 =
    /// pure last-value prediction); `confidence` scales predictions down
    /// before the break-even test so that over-predictions do not trigger
    /// unprofitable spin-downs.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] unless `0 < ewma_alpha <= 1` and
    /// `0 < confidence <= 1` and `params` validates.
    pub fn new(params: &DiskParams, ewma_alpha: f64, confidence: f64) -> Result<Self, PolicyError> {
        check_unit_knob("prediction-based", "ewma_alpha", ewma_alpha)?;
        check_unit_knob("prediction-based", "confidence", confidence)?;
        Ok(PredictiveSpinDown {
            model: SpindlePowerModel::new(params)?,
            params: params.clone(),
            predictor: IdlePredictor::new(ewma_alpha),
            confidence,
            activation: SimDuration::from_secs(10),
            idle_since: None,
        })
    }

    /// Read-only access to the predictor (for diagnostics and tests).
    pub fn predictor(&self) -> &IdlePredictor {
        &self.predictor
    }

    /// The activation gate.
    pub fn activation(&self) -> SimDuration {
        self.activation
    }

    fn on_timer(&mut self, t: SimTime, disks: &[Disk], out: &mut Decision) {
        let Some(started) = self.idle_since else {
            return;
        };
        // Two timers share this event: the activation gate (node still
        // spinning) and the predictive wake-up (node in or heading to
        // standby).
        if disks.iter().any(|d| d.current_rpm().is_none()) {
            for i in 0..disks.len() {
                out.spin_up(i);
            }
            self.idle_since = None;
            return;
        }
        if !node_idle(disks) {
            return;
        }
        let elapsed = t.saturating_since(started);
        let Some(predicted) = self.predictor.predict() else {
            return;
        };
        let predicted = predicted.mul_f64(self.confidence);
        let remaining = predicted.saturating_sub(elapsed);
        let current = disks
            .first()
            .and_then(|d| d.current_rpm())
            .unwrap_or(self.params.max_rpm);
        if !analysis::spin_down_pays_off(&self.params, &self.model, current, remaining) {
            return;
        }
        for i in 0..disks.len() {
            out.spin_down(i);
        }
        // Wake early enough that the spin-up completes at the predicted
        // end of the idle period (Fig. 2's ahead-of-time transition).
        let wake = remaining
            .saturating_sub(self.params.spin_up_time)
            .max(self.params.spin_down_time);
        out.set_timer(t + wake);
    }
}

impl EnergyPolicy for PredictiveSpinDown {
    fn name(&self) -> &'static str {
        "prediction-based"
    }

    fn snapshot(&self) -> crate::PolicySnapshot {
        crate::PolicySnapshot {
            predicted_idle_us: self.predictor.predict().map(|d| d.as_micros()),
            forecast_us: None,
            mode: Some("learned"),
        }
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        match event {
            PolicyEvent::IdleStart { t } => {
                self.idle_since = Some(t);
                out.set_timer(t + self.activation);
            }
            PolicyEvent::Timer { t } => {
                out.clear_timer();
                self.on_timer(t, disks, out);
            }
            PolicyEvent::RequestArrival { completed_idle, .. } => {
                self.idle_since = None;
                if let Some(len) = completed_idle {
                    // Only gated idle periods form the history: the
                    // prediction answers "given the node has already idled
                    // past the gate, how long will this idle period last?".
                    if len >= self.activation {
                        self.predictor.observe(len);
                    }
                }
            }
            PolicyEvent::AfterSubmit { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::drive;
    use sdds_disk::{DiskRequest, DiskState, RequestKind};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn req(id: u64) -> DiskRequest {
        DiskRequest::new(id, RequestKind::Read, 0, 8)
    }

    fn single() -> Vec<Disk> {
        vec![Disk::new(DiskParams::paper_single_speed()).unwrap()]
    }

    fn idle_start(p: &mut dyn EnergyPolicy, at: SimTime, disks: &mut [Disk]) -> Option<SimTime> {
        drive(p, PolicyEvent::IdleStart { t: at }, disks)
    }

    fn timer(p: &mut dyn EnergyPolicy, at: SimTime, disks: &mut [Disk]) -> Option<SimTime> {
        drive(p, PolicyEvent::Timer { t: at }, disks)
    }

    fn arrival(
        p: &mut dyn EnergyPolicy,
        at: SimTime,
        completed_idle: Option<SimDuration>,
        disks: &mut [Disk],
    ) {
        drive(
            p,
            PolicyEvent::RequestArrival {
                t: at,
                completed_idle,
            },
            disks,
        );
    }

    #[test]
    fn simple_spins_down_after_timeout() {
        let mut disks = single();
        let mut p = SimpleSpinDown::new(SimDuration::from_millis(50));
        let armed = idle_start(&mut p, t(0), &mut disks).unwrap();
        assert_eq!(armed, t(50_000));
        disks[0].advance_to(armed);
        assert_eq!(timer(&mut p, armed, &mut disks), None);
        assert_eq!(disks[0].state(), DiskState::SpinningDown);
    }

    #[test]
    fn simple_timer_while_busy_is_harmless() {
        let mut disks = single();
        // A large transfer (100 tracks ~ 500 ms) keeps the disk busy well
        // past the timer.
        disks[0].submit(DiskRequest::new(0, RequestKind::Read, 0, 60_000), t(0));
        let mut p = SimpleSpinDown::new(SimDuration::from_millis(50));
        timer(&mut p, t(50_000), &mut disks);
        assert_eq!(disks[0].counters().spin_downs, 0);
    }

    #[test]
    fn simple_spins_all_members() {
        let params = DiskParams::paper_single_speed();
        let mut disks = vec![
            Disk::new(params.clone()).unwrap(),
            Disk::new(params).unwrap(),
        ];
        let mut p = SimpleSpinDown::new(SimDuration::from_millis(50));
        let armed = idle_start(&mut p, t(0), &mut disks).unwrap();
        for d in &mut disks {
            d.advance_to(armed);
        }
        timer(&mut p, armed, &mut disks);
        for d in &disks {
            assert_eq!(d.state(), DiskState::SpinningDown);
        }
    }

    #[test]
    fn predictive_needs_history() {
        let params = DiskParams::paper_single_speed();
        let mut disks = single();
        let mut p = PredictiveSpinDown::new(&params, 1.0, 1.0).unwrap();
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        assert_eq!(timer(&mut p, gate, &mut disks), None);
        assert_eq!(disks[0].counters().spin_downs, 0);
    }

    #[test]
    fn predictive_spins_down_on_long_prediction() {
        let params = DiskParams::paper_single_speed();
        let mut disks = single();
        let mut p = PredictiveSpinDown::new(&params, 1.0, 1.0).unwrap();
        arrival(&mut p, t(0), Some(secs(300)), &mut disks);
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        let wake = timer(&mut p, gate, &mut disks);
        assert_eq!(disks[0].state(), DiskState::SpinningDown);
        let expected = gate + (secs(300) - p.activation() - params.spin_up_time);
        assert_eq!(wake, Some(expected));
    }

    #[test]
    fn predictive_ignores_short_idles_entirely() {
        let params = DiskParams::paper_single_speed();
        let mut disks = single();
        let mut p = PredictiveSpinDown::new(&params, 1.0, 1.0).unwrap();
        arrival(&mut p, t(0), Some(SimDuration::from_millis(50)), &mut disks);
        assert_eq!(p.predictor().observations(), 0);
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        assert_eq!(timer(&mut p, gate, &mut disks), None);
        assert_eq!(disks[0].counters().spin_downs, 0);
    }

    #[test]
    fn predictive_wake_timer_spins_up() {
        let params = DiskParams::paper_single_speed();
        let mut disks = single();
        let mut p = PredictiveSpinDown::new(&params, 1.0, 1.0).unwrap();
        arrival(&mut p, t(0), Some(secs(100)), &mut disks);
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        let wake = timer(&mut p, gate, &mut disks).unwrap();
        disks[0].advance_to(wake);
        assert_eq!(timer(&mut p, wake, &mut disks), None);
        assert_eq!(disks[0].state(), DiskState::SpinningUp);
        disks[0].advance_to(t(100_000_000));
        assert!(matches!(disks[0].state(), DiskState::Idle { .. }));
    }

    #[test]
    fn predictive_confidence_scales_down() {
        let params = DiskParams::paper_single_speed();
        let mut disks = single();
        // Break-even is ~61 s; a 70 s prediction at confidence 0.5 -> 35 s,
        // below break-even, so no spin-down.
        let mut p = PredictiveSpinDown::new(&params, 1.0, 0.5).unwrap();
        arrival(&mut p, t(0), Some(secs(70)), &mut disks);
        let gate = idle_start(&mut p, t(0), &mut disks).unwrap();
        disks[0].advance_to(gate);
        assert_eq!(timer(&mut p, gate, &mut disks), None);
        assert_eq!(disks[0].counters().spin_downs, 0);
    }

    #[test]
    fn predictive_end_to_end_with_repeated_gaps() {
        use crate::PoweredArray;
        let params = DiskParams::paper_single_speed();
        let mut node = PoweredArray::with_policy(
            params.clone(),
            1,
            Box::new(PredictiveSpinDown::new(&params, 1.0, 0.9).unwrap()),
        )
        .unwrap();
        // Requests separated by repeated 200 s gaps: from the second gap
        // on, the policy predicts and spins down.
        for i in 0..4u64 {
            node.submit(0, req(i), t(i * 200_000_000));
        }
        node.finish(t(800_000_000));
        let c = node.disks()[0].counters();
        assert!(
            c.spin_downs >= 2,
            "expected prediction-driven spin-downs, got {}",
            c.spin_downs
        );
    }

    #[test]
    fn bad_confidence_is_rejected() {
        let params = DiskParams::paper_single_speed();
        let err = PredictiveSpinDown::new(&params, 1.0, 0.0).unwrap_err();
        assert!(err.to_string().contains("confidence"), "{err}");
    }
}
