//! Property tests for the power policies: liveness and conservation under
//! arbitrary arrival patterns, for every strategy.

use proptest::prelude::*;
use sdds_disk::{DiskParams, DiskRequest, RequestKind};
use sdds_power::{PolicyKind, PoweredArray};
use simkit::{SimDuration, SimTime};

fn policies() -> Vec<PolicyKind> {
    let mut all = PolicyKind::paper_strategies();
    all.push(PolicyKind::NoPm);
    // The online family and a distilled forecast table: same liveness and
    // conservation obligations as the paper strategies.
    all.push(PolicyKind::online_spin_down_default(7));
    all.push(PolicyKind::online_multi_speed_default(7));
    all.push(PolicyKind::hybrid_default(7));
    all.push(PolicyKind::TableLookup {
        forecasts: std::sync::Arc::new(vec![vec![90_000_000, 1_000_000, 120_000_000]]),
    });
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every policy serves every request eventually, accounts all time, and
    /// never loses or duplicates completions — regardless of the arrival
    /// pattern (bursts, long silences, mixtures).
    #[test]
    fn policies_are_live_and_conservative(
        gaps in prop::collection::vec(0u64..40_000_000, 1..40),
        disks in 1usize..4,
        seed_policy in 0usize..9,
    ) {
        let kind = policies()[seed_policy].clone();
        let params = DiskParams::paper_defaults();
        let mut node = PoweredArray::new(params.clone(), disks, kind.clone()).unwrap();
        let mut now = SimTime::ZERO;
        for (i, &gap) in gaps.iter().enumerate() {
            now += SimDuration::from_micros(gap);
            let lba = (i as u64 * 7_919) % (params.total_sectors() - 1_000);
            let kind_rw = if i % 3 == 0 { RequestKind::Write } else { RequestKind::Read };
            node.submit(i % disks, DiskRequest::new(i as u64, kind_rw, lba, 64), now);
        }
        let horizon = now + SimDuration::from_secs(240);
        node.finish(horizon);
        let done = node.drain_completions();
        prop_assert_eq!(done.len(), gaps.len(), "{} lost requests", kind.name());
        for d in node.disks() {
            prop_assert_eq!(d.outstanding(), 0);
            prop_assert_eq!(
                d.energy().total_time().as_micros(),
                horizon.as_micros(),
                "{}: unaccounted disk time",
                kind.name()
            );
        }
    }

    /// NoPm is the ceiling at full idle power: every power-saving policy
    /// consumes at most (NoPm energy + transition overhead bound), and a
    /// long trailing idle period always lets spin-down policies save.
    #[test]
    fn long_tail_idle_saves_energy(kind_pick in 0usize..4, tail_secs in 200u64..600) {
        // Each of the two idle halves is >= 100 s: beyond every policy's
        // activation gate and the ~80 s spin-down break-even (including the
        // prediction confidence haircut).
        let kind = PolicyKind::paper_strategies()[kind_pick].clone();
        let params = DiskParams::paper_defaults();
        let horizon = SimTime::ZERO + SimDuration::from_secs(tail_secs);

        let mut managed = PoweredArray::new(params.clone(), 1, kind.clone()).unwrap();
        managed.submit(0, DiskRequest::new(0, RequestKind::Read, 0, 64), SimTime::ZERO);
        // Teach the predictors one long gap, then measure the next.
        managed.submit(
            0,
            DiskRequest::new(1, RequestKind::Read, 0, 64),
            SimTime::ZERO + SimDuration::from_secs(tail_secs / 2),
        );
        managed.finish(horizon);

        let mut unmanaged = PoweredArray::new(params, 1, PolicyKind::NoPm).unwrap();
        unmanaged.submit(0, DiskRequest::new(0, RequestKind::Read, 0, 64), SimTime::ZERO);
        unmanaged.submit(
            0,
            DiskRequest::new(1, RequestKind::Read, 0, 64),
            SimTime::ZERO + SimDuration::from_secs(tail_secs / 2),
        );
        unmanaged.finish(horizon);

        prop_assert!(
            managed.total_joules() < unmanaged.total_joules(),
            "{}: {} J vs NoPm {} J over a {}s mostly-idle run",
            kind.name(),
            managed.total_joules(),
            unmanaged.total_joules(),
            tail_secs
        );
    }

    /// Policy behavior is a deterministic function of the request stream.
    #[test]
    fn policies_are_deterministic(
        gaps in prop::collection::vec(0u64..20_000_000, 1..30),
        kind_pick in 0usize..9,
    ) {
        let kind = policies()[kind_pick].clone();
        let run = || {
            let mut node = PoweredArray::new(DiskParams::paper_defaults(), 2, kind.clone()).unwrap();
            let mut now = SimTime::ZERO;
            for (i, &gap) in gaps.iter().enumerate() {
                now += SimDuration::from_micros(gap);
                node.submit(i % 2, DiskRequest::new(i as u64, RequestKind::Read, (i as u64) * 1000, 32), now);
            }
            node.finish(now + SimDuration::from_secs(120));
            node.total_joules()
        };
        prop_assert_eq!(run(), run());
    }
}
