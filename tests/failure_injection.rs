//! Failure injection and extreme-configuration tests: the stack must stay
//! correct (no deadlock, no lost I/O, closed energy accounting) under
//! hostile parameters.

use sdds_repro::power::PolicyKind;
use sdds_repro::sdds::{run, SystemConfig};
use sdds_repro::workloads::{App, WorkloadScale};
use simkit::SimDuration;

fn small() -> SystemConfig {
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale::test();
    cfg
}

/// A prefetch buffer that fits a single block: the scheduler threads must
/// back off and the application must fall back to synchronous reads.
#[test]
fn starved_prefetch_buffer() {
    let mut cfg = small().with_scheme(true);
    cfg.engine.buffer_capacity = 256 * 1024;
    let baseline = run(App::Astro, &small()).unwrap();
    let o = run(App::Astro, &cfg).unwrap();
    assert_eq!(
        o.result.bytes_moved, baseline.result.bytes_moved,
        "data lost under buffer starvation"
    );
    assert!(o.result.buffer.peak_used <= cfg.engine.buffer_capacity);
}

/// Pathological network latency (100 ms each way): everything slows down
/// but completes, and the slowdown is visible.
#[test]
fn high_network_latency() {
    let mut slow = small();
    slow.engine.network_latency = SimDuration::from_millis(100);
    let fast = run(App::Sar, &small()).unwrap();
    let o = run(App::Sar, &slow).unwrap();
    assert_eq!(o.result.bytes_moved, fast.result.bytes_moved);
    assert!(
        o.result.exec_time > fast.result.exec_time,
        "latency should slow execution ({} vs {})",
        o.result.exec_time,
        fast.result.exec_time
    );
}

/// θ = 1 (the tightest possible performance constraint) must still yield
/// a valid schedule and a correct run.
#[test]
fn tightest_theta() {
    let mut cfg = small().with_scheme(true);
    cfg.scheduler.theta = Some(1);
    let o = run(App::Madbench2, &cfg).unwrap();
    assert!(o.analyzed_accesses > 0);
    assert!(o.result.exec_time > SimDuration::ZERO);
}

/// Coarse slot granularity (`d` iterations per slot, §IV-A): the whole
/// pipeline — trace, slacks, schedule, runtime — must stay consistent.
#[test]
fn coarse_slot_granularity() {
    use sdds_repro::compiler::SlotGranularity;
    let mut cfg = small().with_scheme(true);
    cfg.granularity = SlotGranularity::grouped(4);
    let fine = run(App::Apsi, &small()).unwrap();
    let o = run(App::Apsi, &cfg).unwrap();
    assert_eq!(o.result.bytes_moved, fine.result.bytes_moved);
}

/// Multi-slot access lengths (the extended algorithm, §IV-B2) end to end.
#[test]
fn extended_access_lengths_end_to_end() {
    use sdds_repro::compiler::SlotGranularity;
    let mut cfg = small().with_scheme(true);
    cfg.granularity = SlotGranularity::with_access_lengths(64 * 1024);
    let o = run(App::Sar, &cfg).unwrap();
    assert!(o.result.exec_time > SimDuration::ZERO);
    assert!(o.analyzed_accesses > 0);
}

/// A two-node array (the smallest Fig. 13(c) point) with RAID-10 nodes.
#[test]
fn tiny_cluster_with_raid10() {
    use sdds_repro::storage::RaidLevel;
    let mut cfg = small().with_io_nodes(2);
    cfg.raid_level = RaidLevel::Raid10;
    cfg.disks_per_node = 2;
    for policy in [PolicyKind::NoPm, PolicyKind::staggered_default()] {
        let o = run(App::Madbench2, &cfg.with_policy(policy.clone())).unwrap();
        assert!(
            o.result.energy_joules > 0.0,
            "{} failed on the tiny cluster",
            policy.name()
        );
    }
}

/// A single-process run (degenerate parallelism).
#[test]
fn single_process_run() {
    let mut cfg = small().with_scheme(true);
    cfg.scale.procs = 1;
    let o = run(App::Wupwise, &cfg).unwrap();
    assert_eq!(o.result.per_proc_finish.len(), 1);
    assert!(o.result.exec_time > SimDuration::ZERO);
}

/// A one-block storage cache per node: every read misses, everything still
/// completes and the disks absorb the full traffic.
#[test]
fn one_block_server_cache() {
    let mut cfg = small();
    cfg.cache.capacity_bytes = cfg.cache.block_bytes;
    let o = run(App::Hf, &cfg).unwrap();
    let baseline = run(App::Hf, &small()).unwrap();
    assert_eq!(o.result.bytes_moved, baseline.result.bytes_moved);
    // With no cache to absorb re-reads, execution cannot be faster.
    assert!(o.result.exec_time >= baseline.result.exec_time);
}

/// An absurdly aggressive spin-down timeout must not deadlock or lose
/// requests, however terrible it is for energy (the oscillation regime).
#[test]
fn aggressive_spin_down_is_safe() {
    let cfg = small().with_policy(PolicyKind::SimpleSpinDown {
        timeout: SimDuration::from_millis(100),
    });
    let baseline = run(App::Madbench2, &small()).unwrap();
    let o = run(App::Madbench2, &cfg).unwrap();
    assert_eq!(o.result.bytes_moved, baseline.result.bytes_moved);
    assert!(o.result.exec_time >= baseline.result.exec_time);
}
