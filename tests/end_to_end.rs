//! End-to-end integration: every application under every power strategy,
//! with and without the software scheme, on small workload scales.

use sdds_repro::power::PolicyKind;
use sdds_repro::sdds::{run, SystemConfig};
use sdds_repro::workloads::{App, WorkloadScale};
use simkit::SimDuration;

fn small() -> SystemConfig {
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale::test();
    cfg
}

#[test]
fn every_app_runs_under_every_policy_and_scheme() {
    let base = small();
    for app in App::all() {
        for scheme in [false, true] {
            // Default scheme first (the baseline of every figure).
            let default = run(app, &base.with_scheme(scheme)).unwrap();
            assert!(
                default.result.exec_time > SimDuration::ZERO,
                "{app} default produced no execution time"
            );
            for policy in PolicyKind::paper_strategies() {
                let o = run(app, &base.with_policy(policy.clone()).with_scheme(scheme)).unwrap();
                assert!(
                    o.result.energy_joules.is_finite() && o.result.energy_joules > 0.0,
                    "{app}/{}/scheme={scheme}: bad energy",
                    policy.name()
                );
                assert!(
                    o.result.exec_time > SimDuration::ZERO,
                    "{app}/{}/scheme={scheme}: no progress",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn scheme_preserves_application_io_volume() {
    let base = small();
    for app in App::all() {
        let without = run(app, &base).unwrap();
        let with = run(app, &base.with_scheme(true)).unwrap();
        assert_eq!(
            without.result.bytes_moved, with.result.bytes_moved,
            "{app}: the scheme changed the application's I/O volume"
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let cfg = small()
        .with_policy(PolicyKind::history_based_default())
        .with_scheme(true);
    for app in [App::Hf, App::Apsi] {
        let a = run(app, &cfg).unwrap();
        let b = run(app, &cfg).unwrap();
        assert_eq!(a.result.exec_time, b.result.exec_time, "{app} exec differs");
        assert_eq!(
            a.result.energy_joules, b.result.energy_joules,
            "{app} energy differs"
        );
        assert_eq!(
            a.result.prefetch, b.result.prefetch,
            "{app} prefetch differs"
        );
        assert_eq!(
            a.result.buffer.hits, b.result.buffer.hits,
            "{app} buffer hits differ"
        );
    }
}

#[test]
fn energy_accounting_is_closed() {
    // Total joules must equal the sum over per-state buckets, and total
    // residency must equal disks x exec span.
    let cfg = small().with_policy(PolicyKind::staggered_default());
    let o = run(App::Sar, &cfg).unwrap();
    let total = o.result.energy_joules;
    let by_state: f64 = o.result.energy.iter().map(|(_, e)| e.joules).sum();
    assert!(
        (total - by_state).abs() < 1e-6,
        "energy buckets do not sum: {total} vs {by_state}"
    );
    let residency = o.result.energy.total_time().as_secs_f64();
    let disks = 8.0; // 8 nodes x 1 disk at paper defaults
    let span = o.result.exec_time.as_secs_f64() * disks;
    assert!(
        (residency - span).abs() / span < 1e-6,
        "unaccounted disk time: residency {residency}, span {span}"
    );
}

#[test]
fn compile_pass_reports_moved_accesses() {
    let cfg = small().with_scheme(true);
    let o = run(App::Astro, &cfg).unwrap();
    assert!(o.analyzed_accesses > 0);
    assert!(o.moved_earlier > 0, "astro input reads should move earlier");
    assert!(o.mean_advance > 0.0);
    assert!(
        o.compile_seconds < 30.0,
        "compile took {}",
        o.compile_seconds
    );
}

#[test]
fn buffer_stays_within_capacity() {
    let mut cfg = small().with_scheme(true);
    cfg.engine.buffer_capacity = 4 * 1024 * 1024;
    let o = run(App::Madbench2, &cfg).unwrap();
    assert!(
        o.result.buffer.peak_used <= cfg.engine.buffer_capacity,
        "buffer overflowed: {} > {}",
        o.result.buffer.peak_used,
        cfg.engine.buffer_capacity
    );
}

#[test]
fn idle_cdf_is_monotone_and_complete() {
    let o = run(App::Wupwise, &small()).unwrap();
    let cdf = o.result.idle_histogram.cdf();
    assert!(!cdf.is_empty());
    assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
    assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
}

#[test]
fn raid_configurations_also_run() {
    use sdds_repro::storage::RaidLevel;
    let mut cfg = small();
    for (level, disks) in [(RaidLevel::Raid5, 4), (RaidLevel::Raid10, 4)] {
        cfg.raid_level = level;
        cfg.disks_per_node = disks;
        let o = run(App::Sar, &cfg).unwrap();
        assert!(o.result.energy_joules > 0.0, "{level} run failed");
        // Four member disks consume roughly four single-disk idles.
        let residency = o.result.energy.total_time().as_secs_f64();
        let span = o.result.exec_time.as_secs_f64() * 8.0 * disks as f64;
        assert!((residency - span).abs() / span < 1e-6);
    }
}
