//! Shape assertions: the qualitative claims of the paper's evaluation must
//! hold on moderately-sized runs (8 processes, half phases, half gaps).
//!
//! These are slower than the unit suites (a few seconds each in debug) but
//! pin down the headline behaviours the reproduction is about.

use sdds_repro::power::PolicyKind;
use sdds_repro::sdds::metrics::energy_savings;
use sdds_repro::sdds::{run, SystemConfig};
use sdds_repro::workloads::{App, WorkloadScale};
use simkit::SimDuration;

fn moderate() -> SystemConfig {
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale {
        procs: 8,
        factor: 0.5,
        gap_factor: 0.5,
    };
    cfg
}

/// §II's premise: multi-speed disks exploit idle periods that spin-down
/// disks cannot, so the multi-speed strategies save decisively more.
#[test]
fn multi_speed_beats_spin_down() {
    let cfg = moderate();
    for app in [App::Madbench2, App::Astro] {
        let default = run(app, &cfg).unwrap();
        let simple = run(
            app,
            &cfg.with_policy(PolicyKind::simple_spin_down_default()),
        )
        .unwrap();
        let history = run(app, &cfg.with_policy(PolicyKind::history_based_default())).unwrap();
        let staggered = run(app, &cfg.with_policy(PolicyKind::staggered_default())).unwrap();
        let s_simple = energy_savings(&default, &simple);
        let s_history = energy_savings(&default, &history);
        let s_staggered = energy_savings(&default, &staggered);
        assert!(
            s_history > s_simple && s_staggered > s_simple,
            "{app}: multi-speed ({s_history:.1}%, {s_staggered:.1}%) \
             should beat spin-down ({s_simple:.1}%)"
        );
    }
}

/// Multi-speed strategies genuinely save energy on these workloads.
#[test]
fn history_based_saves_energy() {
    let cfg = moderate();
    for app in [App::Sar, App::Apsi] {
        let default = run(app, &cfg).unwrap();
        let history = run(app, &cfg.with_policy(PolicyKind::history_based_default())).unwrap();
        let savings = energy_savings(&default, &history);
        assert!(
            savings > 5.0,
            "{app}: history-based saved only {savings:.1}%"
        );
    }
}

/// The history-based strategy keeps its performance degradation small
/// (the paper bounds it to ~1.5% without the scheme; allow slack for the
/// reduced run sizes here).
#[test]
fn history_based_penalty_is_small() {
    let cfg = moderate();
    for app in [App::Sar, App::Madbench2] {
        let default = run(app, &cfg).unwrap();
        let history = run(app, &cfg.with_policy(PolicyKind::history_based_default())).unwrap();
        let penalty =
            (history.result.exec_time.as_secs_f64() / default.result.exec_time.as_secs_f64() - 1.0)
                * 100.0;
        assert!(penalty < 8.0, "{app}: history degradation {penalty:.1}%");
    }
}

/// Fig. 12(a) vs (b): the software scheme shifts the idle-period CDF to
/// the right — the fraction of *short* idle periods strictly drops.
///
/// Consolidation is a function of per-slot access density, so this runs
/// at the paper's full process count (with shortened phases).
#[test]
fn scheme_shifts_idle_cdf_right() {
    let mut cfg = moderate();
    cfg.scale = WorkloadScale {
        procs: 32,
        factor: 0.5,
        gap_factor: 0.5,
    };
    let mut shifted = 0;
    for app in [App::Hf, App::Astro, App::Sar] {
        let without = run(app, &cfg).unwrap();
        let with = run(app, &cfg.with_scheme(true)).unwrap();
        let f_without = without
            .result
            .idle_histogram
            .fraction_at_or_below(SimDuration::from_millis(50));
        let f_with = with
            .result
            .idle_histogram
            .fraction_at_or_below(SimDuration::from_millis(50));
        if f_with < f_without - 0.02 {
            shifted += 1;
        }
        assert!(
            f_with <= f_without + 0.05,
            "{app}: short-idle fraction grew substantially ({f_without:.3} -> {f_with:.3})"
        );
    }
    assert!(
        shifted >= 2,
        "the scheme should visibly lengthen idle periods on most applications"
    );
}

/// The scheme must not cost the multi-speed strategies energy (it roughly
/// doubles their savings in the paper; here we require it to be at least
/// neutral and usually positive).
#[test]
fn scheme_does_not_hurt_history_based() {
    let cfg = moderate().with_policy(PolicyKind::history_based_default());
    let mut total_delta = 0.0;
    for app in [App::Hf, App::Sar, App::Apsi] {
        let without = run(app, &cfg).unwrap();
        let with = run(app, &cfg.with_scheme(true)).unwrap();
        let delta = (without.result.energy_joules - with.result.energy_joules)
            / without.result.energy_joules
            * 100.0;
        total_delta += delta;
        assert!(
            delta > -3.0,
            "{app}: the scheme cost history-based {:.1}% energy",
            -delta
        );
    }
    assert!(
        total_delta > -2.0,
        "the scheme should be net-positive for history-based, got {total_delta:.1}%"
    );
}

/// §VII future work: co-scheduling two applications erodes (but must not
/// destroy) the hardware policy's savings — interleaved request streams
/// shorten the idle periods.
#[test]
fn multi_application_erodes_idle_periods() {
    use sdds_repro::sdds::run_trace;
    // Erosion is about request interleaving at realistic concurrency, so
    // use the paper's process count (with shortened phases).
    // Full phase counts so both configurations see every long gap (with
    // fewer phases the predictors never train and the comparison is
    // confounded).
    let mut cfg = moderate();
    cfg.scale = WorkloadScale::paper();
    let a = App::Madbench2;
    let b = App::Sar;
    let ta = a.program(&cfg.scale).trace(a.granularity()).unwrap();
    let tb = b.program(&cfg.scale).trace(b.granularity()).unwrap();
    let merged = ta.merge(&tb);

    let history = cfg.with_policy(PolicyKind::history_based_default());
    let single = run(a, &history).unwrap();
    let single_default = run(a, &cfg).unwrap();
    let merged_default = run_trace(&merged, &cfg).unwrap();
    let merged_history = run_trace(&merged, &history).unwrap();

    let single_savings = energy_savings(&single_default, &single);
    let merged_savings = energy_savings(&merged_default, &merged_history);
    assert!(merged_savings > 0.0, "co-scheduled run still saves energy");
    assert!(
        merged_savings < single_savings + 1.0,
        "co-scheduling should not increase savings (single {single_savings:.1}%, \
         merged {merged_savings:.1}%)"
    );
}
