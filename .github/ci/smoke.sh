#!/usr/bin/env bash
# One smoke scenario per invocation: `smoke.sh <scenario>`.
#
# The CI smoke matrix fans one job out over these scenarios; keeping the
# commands in a script (rather than inlined per job) means every scenario
# runs identically on the runner and on a developer machine. Outputs land
# in ./out for artifact upload.
set -euo pipefail

repro() {
  cargo run --locked --release -p sdds-bench --bin repro -- "$@"
}

mkdir -p out

case "${1:-}" in
  headline)
    # The paper's headline experiment, scaled down.
    repro headline --procs 4 --factor 0.1 --jobs 2 --csv out/
    ;;

  trace)
    # One telemetry-enabled cell; the command itself hard-checks that the
    # per-disk energy table reconciles with the run's total energy to
    # 1e-9 J. Every JSONL line, the Chrome trace, and the metrics dump
    # must be well-formed JSON.
    repro trace --procs 4 --factor 0.1 --apps sar \
      --trace-out out/trace.jsonl --metrics-out out/metrics.json
    python3 - <<'EOF'
import json
events = [json.loads(l) for l in open('out/trace.jsonl')]
assert events, 'empty trace'
chrome = json.load(open('out/trace.chrome.json'))
assert chrome['traceEvents'], 'empty chrome trace'
metrics = json.load(open('out/metrics.json'))
assert metrics['schema'] == 'sdds-metrics-v1', metrics.get('schema')
print(len(events), 'events,', len(chrome['traceEvents']),
      'chrome entries,', len(metrics['counters']), 'counters')
EOF
    ;;

  fault)
    # Two scenarios x two policies, each run twice back to back. The
    # command exits non-zero if any app's bytes_moved diverges from its
    # fault-free twin (recovery lost data), and the two JSON reports of
    # each cell must be byte-identical (the whole fault pipeline is a
    # pure function of the seed).
    for scenario in light heavy; do
      for policy in default history; do
        cell="$scenario-$policy"
        for rep in a b; do
          repro faults --procs 4 --factor 0.25 --gap-factor 0.05 \
            --scenario "$scenario" --policy "$policy" --seed 42 \
            --out "out/faults-$cell-$rep.json"
        done
        cmp "out/faults-$cell-a.json" "out/faults-$cell-b.json" || {
          echo "fault report for $cell is not deterministic" >&2
          exit 1
        }
        echo "$cell: deterministic"
      done
    done
    ;;

  online)
    # The zipfian scene under all three decision layers (distilled table,
    # online learner, hybrid), run twice in separate processes. The
    # sdds-online-v1 report is a pure function of the seed, so the two
    # files must be byte-identical.
    for rep in a b; do
      repro online --scenes zipfian --modes table,online,hybrid \
        --seed 42 --out "out/online-$rep.json"
    done
    cmp out/online-a.json out/online-b.json || {
      echo "online report is not deterministic" >&2
      exit 1
    }
    echo "online zipfian: deterministic across separate processes"
    ;;

  attrib)
    # Full attribution matrix on a fault-heavy cell plus a multi-shard
    # observed scene, run twice in separate processes. The command itself
    # hard-fails if any cell's per-state energy does not reconcile with
    # the headline joules to 1e-9 or a latency split breaks its
    # exact-sum invariant; the two sdds-attrib-v1 reports must
    # additionally be byte-identical.
    for rep in a b; do
      repro attrib --apps sar --procs 8 --factor 0.2 --gap-factor 0.05 \
        --scenario heavy --seed 42 --shards 4 \
        --out "out/attrib-$rep.json"
    done
    cmp out/attrib-a.json out/attrib-b.json || {
      echo "attrib report is not deterministic" >&2
      exit 1
    }
    echo "attrib heavy: deterministic across separate processes"
    ;;

  scale)
    # The sharded kernel's determinism contract, enforced end to end: the
    # same large scene at two worker counts must produce byte-identical
    # digest files (separate processes, so the comparison also covers
    # process-level nondeterminism), and the scale report with speedups
    # is kept as an artifact.
    repro scale --scales 25 --jobs-list 2 --repeat 1 --no-baseline \
      --digest out/scale-digest-j2.txt
    repro scale --scales 25 --jobs-list 8 --repeat 1 --no-baseline \
      --digest out/scale-digest-j8.txt
    cmp out/scale-digest-j2.txt out/scale-digest-j8.txt || {
      echo "scale digests diverged between 2 and 8 workers" >&2
      exit 1
    }
    echo "scale 25: byte-identical at 2 and 8 workers"
    repro scale --scales 25 --jobs-list 1,4 --repeat 1 \
      --out out/scale-smoke.json
    ;;

  rebuild)
    # The replicated object-store scenario, run twice in separate
    # processes. The command itself hard-fails unless foreground bytes
    # match the fault-free twin, the foreground/rebuild energy split
    # reconciles with the headline joules, and straggler-aware routing
    # improves the p99 read latency; the two sdds-rebuild-v1 reports
    # must additionally be byte-identical (the whole scenario is a pure
    # function of the seed).
    for rep in a b; do
      repro rebuild --scenario light --seed 42 --out "out/rebuild-$rep.json"
    done
    cmp out/rebuild-a.json out/rebuild-b.json || {
      echo "rebuild report is not deterministic" >&2
      exit 1
    }
    echo "rebuild light: deterministic across separate processes"
    ;;

  *)
    echo "usage: smoke.sh {headline|trace|fault|online|attrib|scale|rebuild}" >&2
    exit 2
    ;;
esac
